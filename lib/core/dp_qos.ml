(* QoS- and bandwidth-constrained MinCost DP for the closest policy,
   after Rehn-Sonigo (arXiv 0706.3350), structured like {!Dp_withpre}:
   one bottom-up table per node, indexed by (pre-existing reused, new
   servers) strictly below the node.

   Under the closest policy every client whose requests are still
   flowing at node [j] will be served by one common server somewhere on
   the path from [j] to the root. Two quantities therefore summarize a
   partial placement below [j] exactly: the [flow] leaving [j] upward,
   and the [slack] — the number of additional hops above [j] the
   eventual server may sit, i.e. the minimum over unserved clients of
   (QoS bound - hops already travelled). [Tree.unbounded] slack means no
   flowing client is QoS-constrained (in particular whenever flow = 0).

   Neither coordinate dominates the other (absorbing a child early costs
   a server but resets flow AND slack), so each (e, n) cell holds a
   Pareto frontier of (flow, slack) pairs: minimal flow, maximal slack.
   The frontier is at most min (w+1) (height+2) entries — in the
   unconstrained regime every slack is [Tree.unbounded], the frontier
   has one entry, and the program degenerates to exactly {!Dp_withpre}'s
   recurrence.

   Transitions, for a child [c] folded into its parent:
   - pass up: flow crosses the link [c -> parent], so it must fit
     [Tree.bandwidth c], and slack must be >= 1 (it decrements: the
     server moved one hop further from every flowing client);
   - place at [c]: always legal — flow <= w holds for every cell by
     construction and slack >= 0 is an invariant — and yields
     (flow 0, unbounded slack) one server up.
   At the root a positive-flow cell forces a root server, exactly as in
   {!Dp_withpre}.

   Representation: tables are flat — a cell is a singly-linked frontier
   threaded through one per-solve entry pool (parallel int arrays:
   flow, slack, placement handle, next), and placements are {!Arena}
   handles instead of boxed [Clist] spines. Frontier order, insert
   semantics and counter totals are identical to the historical boxed
   form, so placements (and the [Dp_withpre] agreement on unconstrained
   trees) are bit-for-bit unchanged. *)

let c_cells = Stats_counters.counter "dp_qos.cells_created"
let c_products = Stats_counters.counter "dp_qos.merge_products"
let c_capacity = Stats_counters.counter "dp_qos.capacity_rejected"
let c_qos = Stats_counters.counter "dp_qos.qos_rejected"
let c_bw = Stats_counters.counter "dp_qos.bw_rejected"
let c_peak = Stats_counters.counter "dp_qos.peak_frontier"
let t_tables = Stats_counters.timer "dp_qos.tables"

module Span = Replica_obs.Span

(* Entry pool: slot 0 is the nil terminator; every list of every table
   of one solve threads through the same pool. Unlinked (dominated)
   entries simply leak until the solve's pool is dropped — cheaper
   than free-list bookkeeping at these sizes. *)
type pool = {
  mutable p_flow : int array;
  mutable p_slack : int array;
  mutable p_placed : int array;
  mutable p_next : int array;
  mutable p_len : int;
}

type ctx = { pool : pool; arena : Arena.t }

let pool_create () =
  {
    p_flow = Array.make 1024 0;
    p_slack = Array.make 1024 0;
    p_placed = Array.make 1024 0;
    p_next = Array.make 1024 0;
    p_len = 1;
  }

let pool_alloc p ~flow ~slack ~placed ~next =
  let cap = Array.length p.p_flow in
  if p.p_len = cap then begin
    let grow a = Array.append a (Array.make cap 0) in
    p.p_flow <- grow p.p_flow;
    p.p_slack <- grow p.p_slack;
    p.p_placed <- grow p.p_placed;
    p.p_next <- grow p.p_next
  end;
  let i = p.p_len in
  p.p_flow.(i) <- flow;
  p.p_slack.(i) <- slack;
  p.p_placed.(i) <- placed;
  p.p_next.(i) <- next;
  p.p_len <- i + 1;
  i

type table = {
  pre_cap : int;
  new_cap : int;
  (* heads.(e * (new_cap+1) + n): frontier head, flow strictly
     increasing and slack strictly increasing (no entry dominates
     another); 0 = empty. *)
  heads : int array;
}

type result = {
  solution : Solution.t;
  cost : float;
  servers : int;
  reused : int;
}

let make_table pre_cap new_cap =
  { pre_cap; new_cap; heads = Array.make ((pre_cap + 1) * (new_cap + 1)) 0 }

let cell_index t e n = (e * (t.new_cap + 1)) + n

let dec_slack s = if s = Tree.unbounded then s else s - 1

(* Insert keeping the frontier Pareto-minimal (min flow, max slack).
   [prev = 0] means [cur] is the list head. Equivalent to the boxed
   predecessor's purely-functional scan: once an incumbent has been
   dropped, no later entry can dominate the candidate (later entries
   carry strictly larger flow), so unlinking eagerly is safe. *)
let rec insert_from p heads idx ~flow ~slack ~placed prev cur =
  if cur = 0 then begin
    let node = pool_alloc p ~flow ~slack ~placed ~next:0 in
    if prev = 0 then heads.(idx) <- node else p.p_next.(prev) <- node;
    Stats_counters.incr c_cells
  end
  else begin
    let xf = p.p_flow.(cur) and xs = p.p_slack.(cur) in
    if xf <= flow && xs >= slack then () (* dominated *)
    else if flow <= xf && slack >= xs then begin
      (* cur is dominated; drop it *)
      let nxt = p.p_next.(cur) in
      if prev = 0 then heads.(idx) <- nxt else p.p_next.(prev) <- nxt;
      insert_from p heads idx ~flow ~slack ~placed prev nxt
    end
    else if xf < flow then
      insert_from p heads idx ~flow ~slack ~placed cur p.p_next.(cur)
    else begin
      let node = pool_alloc p ~flow ~slack ~placed ~next:cur in
      if prev = 0 then heads.(idx) <- node else p.p_next.(prev) <- node;
      Stats_counters.incr c_cells
    end
  end

let insert ctx t e n ~flow ~slack ~placed =
  let idx = cell_index t e n in
  insert_from ctx.pool t.heads idx ~flow ~slack ~placed 0 t.heads.(idx)

(* e ascending, n ascending, frontier order — the same total order the
   boxed representation iterated in, which the keep-first tie-breaks
   below depend on. [f] receives the pool index of each entry; the
   pool may grow (never shrink) under [f], so links are re-read through
   [ctx.pool] each step. *)
let iter_entries ctx t f =
  let p = ctx.pool in
  for e = 0 to t.pre_cap do
    for n = 0 to t.new_cap do
      let cur = ref t.heads.(cell_index t e n) in
      while !cur <> 0 do
        let i = !cur in
        f e n i;
        cur := p.p_next.(i)
      done
    done
  done

let count_entries ctx t =
  let live = ref 0 in
  iter_entries ctx t (fun _ _ _ -> incr live);
  !live

let rec table_of ctx tree ~w j =
  let start = make_table 0 0 in
  let client = Tree.client_load tree j in
  if client <= w then begin
    let slack = if client = 0 then Tree.unbounded else Tree.qos_radius tree j in
    start.heads.(0) <-
      pool_alloc ctx.pool ~flow:client ~slack ~placed:Arena.empty ~next:0;
    Stats_counters.incr c_cells
  end;
  List.fold_left (merge ctx tree ~w) start (Tree.children tree j)

and merge ctx tree ~w left c =
  let sub = table_of ctx tree ~w c in
  let p = ctx.pool in
  let c_pre = Tree.is_pre_existing tree c in
  let bw = Tree.bandwidth tree c in
  let extended =
    make_table
      (sub.pre_cap + if c_pre then 1 else 0)
      (sub.new_cap + if c_pre then 0 else 1)
  in
  iter_entries ctx sub (fun e n x ->
      let xflow = p.p_flow.(x)
      and xslack = p.p_slack.(x)
      and xplaced = p.p_placed.(x) in
      (* Pass the flow up through the link c -> parent. *)
      if xflow = 0 then
        insert ctx extended e n ~flow:xflow ~slack:xslack ~placed:xplaced
      else if xflow > bw then Stats_counters.incr c_bw
      else if xslack < 1 then Stats_counters.incr c_qos
      else
        insert ctx extended e n ~flow:xflow ~slack:(dec_slack xslack)
          ~placed:xplaced;
      (* Place a server at c: flow <= w and slack >= 0 by invariant. *)
      let absorbed = Arena.snoc ctx.arena xplaced ~node:c ~flow:xflow in
      if c_pre then
        insert ctx extended (e + 1) n ~flow:0 ~slack:Tree.unbounded
          ~placed:absorbed
      else
        insert ctx extended e (n + 1) ~flow:0 ~slack:Tree.unbounded
          ~placed:absorbed);
  let merged =
    make_table (left.pre_cap + extended.pre_cap)
      (left.new_cap + extended.new_cap)
  in
  let products = ref 0 and rejected = ref 0 in
  iter_entries ctx left (fun e1 n1 l ->
      let lflow = p.p_flow.(l)
      and lslack = p.p_slack.(l)
      and lplaced = p.p_placed.(l) in
      iter_entries ctx extended (fun e2 n2 r ->
          incr products;
          let flow = lflow + p.p_flow.(r) in
          if flow <= w then
            insert ctx merged (e1 + e2) (n1 + n2) ~flow
              ~slack:(min lslack p.p_slack.(r))
              ~placed:(Arena.append ctx.arena lplaced p.p_placed.(r))
          else incr rejected));
  Stats_counters.add c_products !products;
  Stats_counters.add c_capacity !rejected;
  Stats_counters.record_max c_peak (count_entries ctx merged);
  merged

let solve tree ~w ~cost =
  if w <= 0 then invalid_arg "Dp_qos: w must be positive";
  let ctx = { pool = pool_create (); arena = Arena.create () } in
  let p = ctx.pool in
  let tracing = Span.enabled () in
  if tracing then Span.begin_span "dp_qos.solve";
  let root = Tree.root tree in
  let table =
    Stats_counters.time t_tables (fun () -> table_of ctx tree ~w root)
  in
  let pre_total = Tree.num_pre_existing tree in
  let root_pre = Tree.is_pre_existing tree root in
  let best = ref None in
  let consider value servers reused placed root_used =
    match !best with
    | Some (v, _, _, _, _) when v <= value -> ()
    | _ -> best := Some (value, servers, reused, placed, root_used)
  in
  iter_entries ctx table (fun e n x ->
      let placed = p.p_placed.(x) in
      if p.p_flow.(x) = 0 then begin
        consider
          (Cost.basic_cost cost ~servers:(e + n) ~reused:e
             ~pre_existing:pre_total)
          (e + n) e placed false;
        if root_pre then
          consider
            (Cost.basic_cost cost ~servers:(e + n + 1) ~reused:(e + 1)
               ~pre_existing:pre_total)
            (e + n + 1) (e + 1) placed true
      end
      else begin
        (* flow <= w and slack >= 0 by invariant: a root server serves
           every remaining client within its QoS budget. *)
        let reused = e + if root_pre then 1 else 0 in
        consider
          (Cost.basic_cost cost ~servers:(e + n + 1) ~reused
             ~pre_existing:pre_total)
          (e + n + 1) reused placed true
      end);
  let result =
    match !best with
    | None -> None
    | Some (value, servers, reused, placed, root_used) ->
        let nodes = Arena.nodes ctx.arena placed in
        let nodes = if root_used then root :: nodes else nodes in
        Some
          { solution = Solution.of_nodes nodes; cost = value; servers; reused }
  in
  if tracing then
    Span.end_span
      ~args:
        [
          ("nodes", Span.Int (Tree.size tree));
          ("w", Span.Int w);
          ("constrained", Span.Bool (Tree.is_constrained tree));
          ("solved", Span.Bool (result <> None));
        ]
      ();
  result

let min_servers tree ~w =
  Option.map
    (fun r -> (r.servers, r.solution))
    (solve tree ~w ~cost:(Cost.basic ()))
