type objective =
  | Min_servers
  | Min_cost of Cost.basic
  | Min_power of {
      modes : Modes.t;
      power : Power.t;
      cost : Cost.modal;
      bound : float;
    }

type t = { tree : Tree.t; w : int; objective : objective }

let make tree ~w objective =
  if w <= 0 then invalid_arg "Problem.make: w must be positive";
  (match objective with
  | Min_power { modes; _ } when Modes.max_capacity modes <> w ->
      invalid_arg "Problem.make: w must equal the mode ladder's maximal capacity"
  | _ -> ());
  { tree; w; objective }

let min_servers tree ~w = make tree ~w Min_servers
let min_cost tree ~w ~cost = make tree ~w (Min_cost cost)

let min_power tree ~modes ~power ~cost ?(bound = infinity) () =
  make tree
    ~w:(Modes.max_capacity modes)
    (Min_power { modes; power; cost; bound })

let bound t =
  match t.objective with Min_power { bound; _ } -> bound | _ -> infinity

let is_power t =
  match t.objective with Min_power _ -> true | _ -> false

let objective_name = function
  | Min_servers -> "min-servers"
  | Min_cost _ -> "min-cost"
  | Min_power _ -> "min-power"
