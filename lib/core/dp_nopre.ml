type cell = { flow : int; placed : (int * int) Clist.t }

type result = { solution : Solution.t; servers : int }

(* Table for a region: cells.(k) = flow-minimal placement with exactly k
   replicas in the region, or None. All stored flows are <= w. *)

let better current candidate =
  match current with
  | None -> true
  | Some c -> candidate.flow < c.flow

let set table k candidate =
  if better table.(k) candidate then table.(k) <- Some candidate

(* Root-to-leaves recursion; returns the table of node j over replicas
   placed strictly below j. *)
let rec table_of tree ~w j =
  let start = Array.make 1 None in
  let client = Tree.client_load tree j in
  if client <= w then
    start.(0) <- Some { flow = client; placed = Clist.empty };
  List.fold_left (merge tree ~w) start (Tree.children tree j)

and merge tree ~w left c =
  let sub = table_of tree ~w c in
  (* Extend the child's table with the "replica at c" decision. *)
  let extended = Array.make (Array.length sub + 1) None in
  Array.iteri
    (fun k cell_opt ->
      match cell_opt with
      | None -> ()
      | Some cell ->
          set extended k cell;
          set extended (k + 1)
            { flow = 0; placed = Clist.snoc cell.placed (c, cell.flow) })
    sub;
  let merged = Array.make (Array.length left + Array.length extended - 1) None in
  Array.iteri
    (fun k1 l ->
      match l with
      | None -> ()
      | Some lc ->
          Array.iteri
            (fun k2 r ->
              match r with
              | None -> ()
              | Some rc ->
                  let flow = lc.flow + rc.flow in
                  if flow <= w then
                    set merged (k1 + k2)
                      { flow; placed = Clist.append lc.placed rc.placed })
            extended)
    left;
  merged

let root_table tree ~w =
  if w <= 0 then invalid_arg "Dp_nopre: w must be positive";
  table_of tree ~w (Tree.root tree)

module Span = Replica_obs.Span

let solve tree ~w =
  let tracing = Span.enabled () in
  if tracing then Span.begin_span "dp_nopre.solve";
  let table = root_table tree ~w in
  let root = Tree.root tree in
  let best = ref None in
  let consider servers placed =
    match !best with
    | Some (s, _) when s <= servers -> ()
    | _ -> best := Some (servers, placed)
  in
  Array.iteri
    (fun k cell_opt ->
      match cell_opt with
      | None -> ()
      | Some cell ->
          if cell.flow = 0 then consider k cell.placed
          else consider (k + 1) (Clist.snoc cell.placed (root, cell.flow)))
    table;
  let result =
    match !best with
    | None -> None
    | Some (servers, placed) ->
        let nodes = List.map fst (Clist.to_list placed) in
        Some { solution = Solution.of_nodes nodes; servers }
  in
  if tracing then
    Span.end_span
      ~args:
        [
          ("nodes", Span.Int (Tree.size tree));
          ("w", Span.Int w);
          ("solved", Span.Bool (result <> None));
        ]
      ();
  result

let min_flow_per_count tree ~w =
  Array.map (Option.map (fun c -> c.flow)) (root_table tree ~w)
