module Span = Replica_obs.Span

let solve tree ~w =
  if w <= 0 then invalid_arg "Greedy.solve: w must be positive";
  let tracing = Span.enabled () in
  if tracing then Span.begin_span "greedy.solve";
  let n = Tree.size tree in
  let flow = Array.make n 0 in
  let replicas = ref [] in
  let feasible = ref true in
  let place j =
    replicas := j :: !replicas;
    flow.(j) <- 0
  in
  let process j =
    let kids = Tree.children tree j in
    let arriving =
      List.fold_left (fun acc c -> acc + flow.(c)) (Tree.client_load tree j) kids
    in
    flow.(j) <- arriving;
    if arriving > w then begin
      (* Absorb the largest child flows first; own clients can only be
         served at j or above, so they are not absorbable here. *)
      let sorted =
        List.sort (fun a b -> compare flow.(b) flow.(a)) kids
      in
      let rec absorb = function
        | [] -> ()
        | c :: rest ->
            if flow.(j) > w && flow.(c) > 0 then begin
              flow.(j) <- flow.(j) - flow.(c);
              place c;
              absorb rest
            end
      in
      absorb sorted;
      if flow.(j) > w then feasible := false
    end
  in
  Array.iter process (Tree.postorder tree);
  let root = Tree.root tree in
  if flow.(root) > 0 then place root;
  let result = if !feasible then Some (Solution.of_nodes !replicas) else None in
  if tracing then
    Span.end_span
      ~args:
        [
          ("nodes", Span.Int n);
          ("w", Span.Int w);
          ("servers", Span.Int (List.length !replicas));
          ("solved", Span.Bool !feasible);
        ]
      ();
  result

let solve_count tree ~w =
  Option.map Solution.cardinal (solve tree ~w)
