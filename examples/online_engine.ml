(* Running the online engine: serve a demand stream against a live
   placement, re-solving incrementally.

   The batch harnesses answer "which update policy is cheapest on
   average"; the engine is the runtime that actually follows one demand
   stream epoch by epoch. This example serves a day of traffic (diurnal
   Poisson plus an evening flash crowd on one region) and checks that
   incremental re-solving — subtree tables cached under demand
   fingerprints — picks exactly the placements of the full re-solve.

   It then shows where the cache pays: measured per-client rates jitter
   everywhere, so a raw trace leaves little to reuse, but when demand
   movement is confined to one region (the §6 request-location shift)
   the incremental solver skips almost all of the merge work.

   Run with: dune exec examples/online_engine.exe *)

open Replica_tree
open Replica_core
open Replica_engine

let w = 10
let cost = Cost.basic ~create:0.5 ~delete:0.25 ()

let merge_products (t : Timeline.t) =
  List.fold_left
    (fun acc (e : Timeline.entry) ->
      acc
      + (try List.assoc "dp_withpre.merge_products" e.Timeline.counters
         with Not_found -> 0))
    0 t.Timeline.entries

let identical (a : Timeline.t) (b : Timeline.t) =
  List.for_all2
    (fun (x : Timeline.entry) (y : Timeline.entry) ->
      Solution.equal x.Timeline.servers y.Timeline.servers)
    a.Timeline.entries b.Timeline.entries

let () =
  let open Replica_trace in
  let rng = Rng.create 4242 in
  let tree = Generator.random rng (Generator.high ~nodes:40 ()) in
  let base = Arrivals.diurnal rng tree ~horizon:24. ~period:24. ~floor:0.25 in
  let hotspot = List.hd (Tree.children tree (Tree.root tree)) in
  let trace =
    Arrivals.flash_crowd rng tree ~base ~at:18. ~duration:2. ~node:hotspot
      ~multiplier:3.
  in
  Printf.printf
    "network: %d nodes (W = %d); trace: %d requests over %.0f hours\n\n"
    (Tree.size tree) w (Trace.length trace) (Trace.duration trace);

  let run_trace solver =
    let cfg =
      Engine.config ~policy:Update_policy.Lazy ~solver ~w
        (Engine.Min_cost cost)
    in
    Engine.run_trace cfg tree trace ~window:1.
  in
  let full = run_trace Engine.Full in
  let incremental = run_trace Engine.Incremental in
  print_endline "timeline (incremental engine, lazy policy):";
  Timeline.print stdout incremental;
  Printf.printf "\nplacements identical to full re-solves: %b\n"
    (identical full incremental);
  Printf.printf
    "merge products on the raw trace: %d full vs %d incremental\n"
    (merge_products full) (merge_products incremental);
  print_endline
    "(measured rates jitter at every client, so little is reusable)";

  (* Demand movement confined to the hotspot region: every other epoch
     its clients gain one request, the rest of the network holds still.
     Only the hotspot's root-to-leaf paths are ever dirty, so warm
     epochs re-solve from cache. *)
  let in_hotspot = Array.make (Tree.size tree) false in
  let rec mark j =
    in_hotspot.(j) <- true;
    List.iter mark (Tree.children tree j)
  in
  mark hotspot;
  let shifted =
    Tree.with_clients tree (fun j ->
        let cs = Tree.clients tree j in
        if in_hotspot.(j) then
          match cs with
          | c :: rest when List.fold_left ( + ) 0 cs < w -> (c + 1) :: rest
          | _ -> cs
        else cs)
  in
  let demands = List.init 12 (fun i -> if i mod 2 = 1 then shifted else tree) in
  let run_shift solver =
    let cfg =
      Engine.config ~policy:Update_policy.Systematic ~solver ~w
        (Engine.Min_cost cost)
    in
    Engine.run cfg demands
  in
  let full = run_shift Engine.Full in
  let incremental = run_shift Engine.Incremental in
  Printf.printf
    "\nsingle-region shift, %d epochs, systematic policy:\n\
     placements identical to full re-solves: %b\n\
     merge products: %d full vs %d incremental\n"
    (List.length demands)
    (identical full incremental)
    (merge_products full) (merge_products incremental)
