(* The profile-analysis layer: Trace_reader forest reconstruction,
   Profile self-time aggregation and folded stacks, Critical_path
   extraction, and the Bench_history regression gate. *)

open Helpers
module Obs = Replica_obs
module Span = Obs.Span
module Json = Obs.Json
module TR = Obs.Trace_reader
module BH = Obs.Bench_history

(* --- well-formed span forest generator --- *)

(* A spec tree carries only structure and durations; [spans_of_spec]
   places children sequentially inside the parent with 1 ns gaps, so
   the resulting span list is well-formed by construction: children
   are disjoint and strictly contained, and every node has positive
   self time. *)
type spec = { s_dur : int; s_children : spec list }

let spec_dur children slack =
  slack + List.length children
  + List.fold_left (fun a c -> a + c.s_dur) 0 children

let spec_gen =
  let open QCheck2.Gen in
  sized_size (int_range 0 40) @@ fix (fun self n ->
      if n <= 0 then
        map (fun d -> { s_dur = d; s_children = [] }) (int_range 1 1000)
      else
        int_range 0 3 >>= fun k ->
        list_size (return k) (self (n / 4)) >>= fun children ->
        map
          (fun slack -> { s_dur = spec_dur children slack; s_children = children })
          (int_range 1 1000))

let spans_of_spec root =
  let acc = ref [] in
  let fresh =
    let c = ref 0 in
    fun () -> incr c; !c
  in
  let rec place start depth spec =
    let name = Printf.sprintf "f%d_%d" depth (fresh () mod 3) in
    (* Synthetic alloc columns derived from the durations: a span's
       words are 2x its ns, so parents strictly include their children
       on the alloc axis too and the self-alloc partition telescopes to
       2x the root duration. *)
    acc :=
      {
        Span.name;
        start_ns = start;
        dur_ns = spec.s_dur;
        tid = 0;
        depth = 0;
        minor_w = 2 * spec.s_dur;
        major_w = spec.s_dur / 2;
        args = [];
      }
      :: !acc;
    let cursor = ref (start + 1) in
    List.iter
      (fun c ->
        place !cursor (depth + 1) c;
        cursor := !cursor + c.s_dur + 1)
      spec.s_children
  in
  place 1000 0 root;
  !acc

let root_of_spec spec =
  match TR.forest_of_spans (spans_of_spec spec) with
  | [ root ] -> root
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

(* --- Trace_reader --- *)

let prop_forest_reconstruction =
  qcheck_case "trace_reader: one root, every span placed, wall = root dur"
    spec_gen (fun spec ->
      let spans = spans_of_spec spec in
      let root = root_of_spec spec in
      TR.fold (fun n _ -> n + 1) 0 [ root ] = List.length spans
      && TR.wall_ns [ root ] = spec.s_dur)

let prop_roundtrip_through_chrome_trace =
  qcheck_case "trace_reader: chrome-trace JSON roundtrip preserves the forest"
    spec_gen (fun spec ->
      let spans = spans_of_spec spec in
      let contents = Obs.Chrome_trace.to_string ~dropped:3 spans in
      match TR.of_string contents with
      | Error e -> QCheck2.Test.fail_reportf "roundtrip failed: %s" e
      | Ok t ->
          t.TR.span_count = List.length spans
          && t.TR.dropped = 3
          && Obs.Profile.folded t.TR.roots
             = Obs.Profile.folded [ root_of_spec spec ]
          (* The alloc columns ride through the JSON as reserved args
             keys; the roundtrip must preserve them exactly. *)
          && TR.total_minor_w t.TR.roots = 2 * spec.s_dur
          && Obs.Profile.folded_alloc t.TR.roots
             = Obs.Profile.folded_alloc [ root_of_spec spec ])

let test_reader_rejects_invalid () =
  (match TR.of_string "{\"traceEvents\": 1}" with
  | Ok _ -> Alcotest.fail "accepted malformed trace"
  | Error _ -> ());
  match TR.of_string "not json" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ()

let test_reader_parallel_tids () =
  (* Overlapping intervals on different tids are separate trees, not
     nested. *)
  let sp name start dur tid =
    {
      Span.name;
      start_ns = start;
      dur_ns = dur;
      tid;
      depth = 0;
      minor_w = 0;
      major_w = 0;
      args = [];
    }
  in
  let roots =
    TR.forest_of_spans [ sp "a" 0 100 1; sp "b" 10 50 2; sp "c" 10 50 1 ]
  in
  check ci "two roots" 2 (List.length roots);
  let a = List.find (fun n -> n.TR.span.Span.name = "a") roots in
  check ci "c nested under a" 1 (List.length a.TR.children)

(* --- Profile --- *)

let prop_self_times_partition_wall =
  qcheck_case "profile: self times sum exactly to root wall time" spec_gen
    (fun spec ->
      let root = root_of_spec spec in
      let rows = Obs.Profile.rows [ root ] in
      List.fold_left (fun a (r : Obs.Profile.row) -> a + r.Obs.Profile.self_ns)
        0 rows
      = spec.s_dur)

let prop_folded_weights_partition_wall =
  qcheck_case "profile: folded stack weights sum to root wall time" spec_gen
    (fun spec ->
      let root = root_of_spec spec in
      let total =
        Obs.Profile.folded [ root ]
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
        |> List.fold_left
             (fun acc line ->
               match String.rindex_opt line ' ' with
               | Some i ->
                   acc
                   + int_of_string
                       (String.sub line (i + 1) (String.length line - i - 1))
               | None -> acc)
             0
      in
      total = spec.s_dur)

let prop_self_alloc_partitions_total =
  qcheck_case
    "profile: self minor words sum exactly to the root's minor words"
    spec_gen (fun spec ->
      let root = root_of_spec spec in
      let rows = Obs.Profile.rows [ root ] in
      List.fold_left
        (fun a (r : Obs.Profile.row) -> a + r.Obs.Profile.self_minor_w)
        0 rows
      = 2 * spec.s_dur)

let prop_folded_alloc_weights_partition_total =
  qcheck_case "profile: folded alloc weights sum to the root's minor words"
    spec_gen (fun spec ->
      let root = root_of_spec spec in
      let total =
        Obs.Profile.folded_alloc [ root ]
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
        |> List.fold_left
             (fun acc line ->
               match String.rindex_opt line ' ' with
               | Some i ->
                   acc
                   + int_of_string
                       (String.sub line (i + 1) (String.length line - i - 1))
               | None -> acc)
             0
      in
      total = 2 * spec.s_dur)

let test_folded_shape () =
  let sp ?(minor = 0) name start dur =
    {
      Span.name;
      start_ns = start;
      dur_ns = dur;
      tid = 0;
      depth = 0;
      minor_w = minor;
      major_w = 0;
      args = [];
    }
  in
  let roots = TR.forest_of_spans [ sp "root" 0 100; sp "leaf" 10 40 ] in
  check Alcotest.string "folded lines" "root 60\nroot;leaf 40\n"
    (Obs.Profile.folded roots);
  (* Alloc-weighted twin: weights come from minor words, not ns. *)
  let aroots =
    TR.forest_of_spans
      [ sp ~minor:100 "root" 0 100; sp ~minor:30 "leaf" 10 40 ]
  in
  check Alcotest.string "folded alloc lines" "root 70\nroot;leaf 30\n"
    (Obs.Profile.folded_alloc aroots);
  (* Spans recorded without alloc capture fold to nothing (all-zero
     self weights are skipped, same as zero self time). *)
  check Alcotest.string "alloc-off trace folds empty" ""
    (Obs.Profile.folded_alloc roots)

let test_alloc_table_shape () =
  let sp ?(minor = 0) name start dur =
    {
      Span.name;
      start_ns = start;
      dur_ns = dur;
      tid = 0;
      depth = 0;
      minor_w = minor;
      major_w = 0;
      args = [];
    }
  in
  let roots =
    TR.forest_of_spans
      [ sp ~minor:1000 "root" 0 100; sp ~minor:250 "leaf" 10 40 ]
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let table = Obs.Profile.alloc_table roots in
  check cb "header present" true (contains table "minor(w)");
  check cb "root row present" true (contains table "root");
  check cb "leaf self percentage (250/1000)" true (contains table "25.0%");
  (* k=1 truncates and says so. *)
  let top1 = Obs.Profile.alloc_table ~k:1 roots in
  check cb "truncation footer" true (contains top1 "1 more span name")

(* --- Critical_path --- *)

let prop_critical_path_invariants =
  qcheck_case
    "critical_path: total = root dur, >= every phase, contributions >= 0"
    spec_gen (fun spec ->
      let root = root_of_spec spec in
      let steps = Obs.Critical_path.of_node root in
      let total = Obs.Critical_path.total_ns steps in
      steps <> []
      && total = spec.s_dur
      && total <= root.TR.span.Span.dur_ns
      && List.for_all
           (fun (s : Obs.Critical_path.step) ->
             s.Obs.Critical_path.dur_ns <= total
             && s.Obs.Critical_path.contribution_ns >= 0)
           steps)

let prop_critical_path_alloc_telescopes =
  qcheck_case
    "critical_path: alloc contributions telescope to the root's minor words"
    spec_gen (fun spec ->
      let root = root_of_spec spec in
      let steps = Obs.Critical_path.of_node root in
      Obs.Critical_path.total_minor_w steps = 2 * spec.s_dur
      && List.for_all
           (fun (s : Obs.Critical_path.step) ->
             s.Obs.Critical_path.contribution_minor_w >= 0)
           steps)

let test_critical_path_picks_widest_child () =
  let sp ?(minor = 0) name start dur =
    {
      Span.name;
      start_ns = start;
      dur_ns = dur;
      tid = 0;
      depth = 0;
      minor_w = minor;
      major_w = 0;
      args = [];
    }
  in
  let roots =
    TR.forest_of_spans
      [ sp "root" 0 100; sp "small" 5 20; sp "big" 30 60; sp "inner" 35 10 ]
  in
  let steps = Obs.Critical_path.longest roots in
  check
    (Alcotest.list Alcotest.string)
    "path descends through the longest child at each level"
    [ "root"; "big"; "inner" ]
    (List.map (fun (s : Obs.Critical_path.step) -> s.Obs.Critical_path.name)
       steps);
  check ci "contributions telescope to the root duration" 100
    (Obs.Critical_path.total_ns steps)

(* --- Bench_history --- *)

let obs_artifact ~spans ~overhead =
  Json.Obj
    [
      ("schema_version", Json.Int Json.schema_version);
      ("bench", Json.String "obs");
      ("spans_per_solve", Json.Int spans);
      ("tracing_on_overhead_percent", Json.Float overhead);
    ]

let dp_artifact ~products =
  Json.Obj
    [
      ("schema_version", Json.Int Json.schema_version);
      ("bench", Json.String "dp_power");
      ( "pruned",
        Json.Obj
          [
            ("power", Json.Float 550.);
            ("cost", Json.Float 4.3);
            ("dp_power.merge_products", Json.Int products);
          ] );
    ]

let diff_exn ?rel_tol ~baseline ~current () =
  match BH.diff ?rel_tol ~baseline ~current () with
  | Ok r -> r
  | Error e -> Alcotest.failf "diff failed: %s" e

let test_bench_diff_flags_count_regression () =
  (* A 20% jump in a deterministic count metric must hard-fail. *)
  let r =
    diff_exn ~baseline:(dp_artifact ~products:100)
      ~current:(dp_artifact ~products:120) ()
  in
  check ci "one hard regression" 1 r.BH.hard_regressions;
  check ci "no warnings" 0 r.BH.soft_regressions;
  let c =
    List.find
      (fun (c : BH.comparison) -> c.BH.metric = "pruned.dp_power.merge_products")
      r.BH.comparisons
  in
  check cb "status regressed" true (c.BH.status = BH.Regressed);
  check (Alcotest.float 1e-6) "delta percent" 20. c.BH.delta_pct

let test_bench_diff_accepts_equal_and_improved () =
  let r =
    diff_exn ~baseline:(dp_artifact ~products:100)
      ~current:(dp_artifact ~products:100) ()
  in
  check ci "equal run: no hard regressions" 0 r.BH.hard_regressions;
  (* merge_products is an Exact replay-identity metric: any drift gates,
     even a decrease — fewer products means the solver no longer
     enumerates the same product set as the baseline. *)
  let r =
    diff_exn ~baseline:(dp_artifact ~products:100)
      ~current:(dp_artifact ~products:80) ()
  in
  check ci "merge product drift gates even when it shrinks" 1
    r.BH.hard_regressions

let test_bench_diff_noise_floor () =
  (* Timing-ish metric: +60% relative but within the 2-point absolute
     floor -> unchanged; beyond both -> soft regression only. *)
  let r =
    diff_exn ~baseline:(obs_artifact ~spans:200 ~overhead:1.0)
      ~current:(obs_artifact ~spans:200 ~overhead:1.6) ()
  in
  check ci "jitter under the absolute floor is not a regression" 0
    (r.BH.hard_regressions + r.BH.soft_regressions);
  let r =
    diff_exn ~baseline:(obs_artifact ~spans:200 ~overhead:1.0)
      ~current:(obs_artifact ~spans:200 ~overhead:8.0) ()
  in
  check ci "real timing regressions only warn" 0 r.BH.hard_regressions;
  check ci "but are counted" 1 r.BH.soft_regressions;
  (* The exact-match count metric still gates. *)
  let r =
    diff_exn ~baseline:(obs_artifact ~spans:200 ~overhead:1.0)
      ~current:(obs_artifact ~spans:201 ~overhead:1.0) ()
  in
  check ci "span count drift is a hard regression" 1 r.BH.hard_regressions

let test_bench_diff_threshold_override () =
  let base = obs_artifact ~spans:200 ~overhead:2.0 in
  let cur = obs_artifact ~spans:200 ~overhead:6.0 in
  let strict = diff_exn ~rel_tol:0.1 ~baseline:base ~current:cur () in
  check ci "tight threshold flags it" 1 strict.BH.soft_regressions;
  let lax = diff_exn ~rel_tol:5.0 ~baseline:base ~current:cur () in
  check ci "loose threshold accepts it" 0 lax.BH.soft_regressions

let test_bench_diff_rejects_mismatches () =
  let reject name baseline current =
    match BH.diff ~baseline ~current () with
    | Ok _ -> Alcotest.failf "%s: diff accepted mismatched artifacts" name
    | Error _ -> ()
  in
  reject "kind" (obs_artifact ~spans:1 ~overhead:0.)
    (dp_artifact ~products:1);
  reject "schema"
    (Json.Obj
       [
         ("schema_version", Json.Int (Json.schema_version + 1));
         ("bench", Json.String "obs");
       ])
    (obs_artifact ~spans:1 ~overhead:0.);
  reject "unknown kind"
    (Json.Obj
       [
         ("schema_version", Json.Int Json.schema_version);
         ("bench", Json.String "mystery");
       ])
    (Json.Obj
       [
         ("schema_version", Json.Int Json.schema_version);
         ("bench", Json.String "mystery");
       ])

let obs_alloc_artifact ~disabled_words ~alloc_bytes =
  Json.Obj
    [
      ("schema_version", Json.Int Json.schema_version);
      ("bench", Json.String "obs");
      ("spans_per_solve", Json.Int 200);
      ("tracing_on_overhead_percent", Json.Float 1.0);
      ("alloc_disabled_minor_words", Json.Int disabled_words);
      ("allocated_bytes_per_solve", Json.Float alloc_bytes);
    ]

let test_bench_diff_gates_alloc_metrics () =
  (* The disabled span path allocating at all is a hard, exact gate. *)
  let r =
    diff_exn
      ~baseline:(obs_alloc_artifact ~disabled_words:0 ~alloc_bytes:1e6)
      ~current:(obs_alloc_artifact ~disabled_words:16 ~alloc_bytes:1e6) ()
  in
  check ci "allocation on the disabled path is a hard regression" 1
    r.BH.hard_regressions;
  (* allocated_bytes_per_solve is directional and noise-aware. *)
  let r =
    diff_exn
      ~baseline:(obs_alloc_artifact ~disabled_words:0 ~alloc_bytes:10e6)
      ~current:(obs_alloc_artifact ~disabled_words:0 ~alloc_bytes:10.5e6) ()
  in
  check ci "alloc jitter within tolerance passes" 0
    (r.BH.hard_regressions + r.BH.soft_regressions);
  let r =
    diff_exn
      ~baseline:(obs_alloc_artifact ~disabled_words:0 ~alloc_bytes:10e6)
      ~current:(obs_alloc_artifact ~disabled_words:0 ~alloc_bytes:13e6) ()
  in
  check ci "a 30% alloc growth is a soft regression" 1 r.BH.soft_regressions;
  check ci "but not a hard one" 0 r.BH.hard_regressions;
  let r =
    diff_exn
      ~baseline:(obs_alloc_artifact ~disabled_words:0 ~alloc_bytes:10e6)
      ~current:(obs_alloc_artifact ~disabled_words:0 ~alloc_bytes:5e6) ()
  in
  check ci "allocating less never regresses" 0
    (r.BH.hard_regressions + r.BH.soft_regressions)

let test_bench_diff_missing_metrics_reported () =
  let r =
    diff_exn
      ~baseline:(dp_artifact ~products:100)
      ~current:(dp_artifact ~products:100) ()
  in
  check cb "specs absent from the artifact are listed, not errors" true
    (List.mem "merge_products_ratio" r.BH.missing)

let () =
  Alcotest.run "profile"
    [
      ( "trace-reader",
        [
          prop_forest_reconstruction;
          prop_roundtrip_through_chrome_trace;
          Alcotest.test_case "rejects invalid input" `Quick
            test_reader_rejects_invalid;
          Alcotest.test_case "parallel tids stay separate trees" `Quick
            test_reader_parallel_tids;
        ] );
      ( "profile",
        [
          prop_self_times_partition_wall;
          prop_folded_weights_partition_wall;
          prop_self_alloc_partitions_total;
          prop_folded_alloc_weights_partition_total;
          Alcotest.test_case "folded output shape" `Quick test_folded_shape;
          Alcotest.test_case "alloc table shape" `Quick test_alloc_table_shape;
        ] );
      ( "critical-path",
        [
          prop_critical_path_invariants;
          prop_critical_path_alloc_telescopes;
          Alcotest.test_case "descends the widest child" `Quick
            test_critical_path_picks_widest_child;
        ] );
      ( "bench-history",
        [
          Alcotest.test_case "flags an injected 20% count regression" `Quick
            test_bench_diff_flags_count_regression;
          Alcotest.test_case "accepts equal and improved runs" `Quick
            test_bench_diff_accepts_equal_and_improved;
          Alcotest.test_case "noise floor and soft severity" `Quick
            test_bench_diff_noise_floor;
          Alcotest.test_case "threshold override" `Quick
            test_bench_diff_threshold_override;
          Alcotest.test_case "rejects mismatched artifacts" `Quick
            test_bench_diff_rejects_mismatches;
          Alcotest.test_case "gates the alloc metrics" `Quick
            test_bench_diff_gates_alloc_metrics;
          Alcotest.test_case "missing metrics reported" `Quick
            test_bench_diff_missing_metrics_reported;
        ] );
    ]
