(* The observability substrate: histograms, span tracing, the JSON
   parser and both exporters, plus the Stats_counters snapshot/diff and
   monotonic-clock regressions. *)

open Replica_core
open Helpers
module Obs = Replica_obs
module H = Obs.Histogram
module Span = Obs.Span
module Json = Obs.Json

(* --- Histogram --- *)

let observations_gen =
  QCheck2.Gen.(list_size (int_range 1 200) (int_range (-5) 1_000_000))

let prop_each_observation_in_one_bin =
  qcheck_case "histogram: every observation lands in exactly one bin"
    observations_gen (fun obs ->
      let h = H.make "test" in
      List.iter (H.observe h) obs;
      (* The last cumulative bucket count equals the observation count
         exactly when each observation incremented exactly one bin. *)
      H.count h = List.length obs
      && (match List.rev (H.buckets h) with
         | (_, cum) :: _ -> cum = List.length obs
         | [] -> false)
      && H.sum h = List.fold_left ( + ) 0 obs)

let prop_quantiles_monotone =
  qcheck_case "histogram: p50 <= p90 <= p99" observations_gen (fun obs ->
      let h = H.make "test" in
      List.iter (H.observe h) obs;
      let s = H.summary h in
      s.H.p50 <= s.H.p90 && s.H.p90 <= s.H.p99)

let prop_quantile_brackets_value =
  qcheck_case "histogram: geometric-midpoint quantile within 2x of the value"
    QCheck2.Gen.(int_range 1 (1 lsl 40))
    (fun v ->
      let h = H.make "test" in
      H.observe h v;
      (* The estimate is the bin's geometric midpoint; value and
         estimate share a log2 bin, so they are within a factor 2 of
         each other in either direction. *)
      let q = H.quantile h 0.99 in
      q < 2 * v && v < 2 * q)

let test_histogram_edges () =
  let h = H.make "edges" in
  check ci "empty quantile" 0 (H.quantile h 0.5);
  H.observe h 0;
  H.observe h (-3);
  check ci "non-positive values in bin 0" 0 (H.quantile h 1.0);
  check ci "count" 2 (H.count h);
  H.reset h;
  check ci "reset clears" 0 (H.count h)

let test_histogram_registry () =
  let a = H.create "test_obs.registered" in
  let b = H.create "test_obs.registered" in
  H.observe a 7;
  check ci "interned by name" (H.count a) (H.count b);
  check cb "snapshots sees it"
    true
    (List.mem_assoc "test_obs.registered" (H.snapshots ()));
  H.reset a

(* --- Span tracing --- *)

let with_tracing f =
  Span.reset ();
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.reset ())
    f

let record_nested () =
  Span.with_span "outer" (fun () ->
      Span.with_span ~args:[ ("k", Span.Int 1) ] "inner_a" (fun () -> ());
      Span.with_span "inner_b" (fun () ->
          Span.with_span "leaf" (fun () -> ())))

let test_span_nesting () =
  let spans = with_tracing (fun () ->
      record_nested ();
      Span.export ())
  in
  check ci "four spans" 4 (List.length spans);
  (* Well-formedness: every non-root span lies inside some span one
     level up on the same domain. *)
  List.iter
    (fun (s : Span.span) ->
      if s.Span.depth > 0 then
        check cb (Printf.sprintf "%s has an enclosing parent" s.Span.name) true
          (List.exists
             (fun (p : Span.span) ->
               p.Span.tid = s.Span.tid
               && p.Span.depth = s.Span.depth - 1
               && p.Span.start_ns <= s.Span.start_ns
               && s.Span.start_ns + s.Span.dur_ns
                  <= p.Span.start_ns + p.Span.dur_ns)
             spans))
    spans;
  List.iter
    (fun (s : Span.span) -> check cb "non-negative dur" true (s.Span.dur_ns >= 0))
    spans

let test_span_disabled_records_nothing () =
  Span.reset ();
  check cb "disabled by default" false (Span.enabled ());
  record_nested ();
  check ci "nothing recorded when disabled" 0 (Span.count ())

let test_span_exception_safety () =
  let spans = with_tracing (fun () ->
      (try Span.with_span "raises" (fun () -> failwith "boom")
       with Failure _ -> ());
      Span.export ())
  in
  check ci "span closed on exception" 1 (List.length spans)

let test_span_set_capacity_validation () =
  List.iter
    (fun c ->
      match Span.set_capacity c with
      | () -> Alcotest.failf "set_capacity %d accepted" c
      | exception Invalid_argument _ -> ())
    [ 0; -1; min_int ]

let test_span_alloc_capture () =
  (* With alloc capture on, every span carries its GC word deltas:
     the child sees its own allocation and the parent's columns
     include the child's (allocation counters are monotone). *)
  let spans =
    with_tracing (fun () ->
        Span.set_alloc true;
        Fun.protect
          ~finally:(fun () -> Span.set_alloc false)
          (fun () ->
            Span.with_span "outer" (fun () ->
                Span.with_span "inner" (fun () ->
                    ignore (Sys.opaque_identity (Array.make 100 0.0))));
            Span.export ()))
  in
  let find n = List.find (fun (s : Span.span) -> s.Span.name = n) spans in
  let outer = find "outer" and inner = find "inner" in
  check cb "inner span sees its own allocation" true
    (inner.Span.minor_w >= 100);
  check cb "parent minor words include the child's" true
    (outer.Span.minor_w >= inner.Span.minor_w);
  check cb "major words are non-negative" true
    (outer.Span.major_w >= 0 && inner.Span.major_w >= 0)

let test_span_alloc_off_records_zero () =
  (* Alloc capture defaults to off; spans then carry all-zero alloc
     columns (and the exporter omits the args entirely, keeping
     alloc-off traces byte-stable). *)
  check cb "alloc capture off by default" false (Span.alloc_enabled ());
  let spans = with_tracing (fun () ->
      record_nested ();
      Span.export ())
  in
  List.iter
    (fun (s : Span.span) ->
      check ci (s.Span.name ^ ": minor words zero") 0 s.Span.minor_w;
      check ci (s.Span.name ^ ": major words zero") 0 s.Span.major_w)
    spans

(* --- JSON parser --- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("bool", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("nan_becomes_null", Json.Float Float.nan);
        ("string", Json.String "a \"quoted\"\nline\twith \\ escapes");
        ("list", Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
      ]
  in
  let printed = Json.to_string ~pretty:true v in
  match Json.parse printed with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok parsed ->
      check Alcotest.string "print/parse/print fixpoint" printed
        (Json.to_string ~pretty:true parsed)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "parse accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2" ]

(* --- Chrome trace exporter --- *)

let test_chrome_trace_valid () =
  let spans = with_tracing (fun () ->
      record_nested ();
      Span.export ())
  in
  let contents = Obs.Chrome_trace.to_string ~pretty:true spans in
  match Obs.Chrome_trace.validate contents with
  (* + 1 for the always-emitted spans_dropped metadata event *)
  | Ok n -> check ci "one event per span" (List.length spans + 1) n
  | Error e -> Alcotest.failf "exporter output invalid: %s" e

let test_chrome_trace_rejects () =
  List.iter
    (fun s ->
      match Obs.Chrome_trace.validate s with
      | Ok _ -> Alcotest.failf "validate accepted %S" s
      | Error _ -> ())
    [
      "{}";
      "{\"traceEvents\": 3}";
      "{\"traceEvents\": [{\"ph\": \"X\"}]}";
      (* an X event missing dur *)
      "{\"traceEvents\": [{\"name\": \"a\", \"ph\": \"X\", \"ts\": 0, \
       \"pid\": 1, \"tid\": 0}]}";
    ]

let test_chrome_trace_deterministic_structure () =
  (* Same workload twice: identical event names in identical order once
     timestamps are ignored — the structural determinism the cram test
     relies on. *)
  let names () =
    with_tracing (fun () ->
        record_nested ();
        List.map (fun (s : Span.span) -> (s.Span.name, s.Span.depth))
          (Span.export ()))
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "stable (name, depth) sequence" (names ()) (names ())

(* --- Prometheus exporter --- *)

let test_prometheus_valid () =
  let h = H.make "test_obs.latency_ns" in
  List.iter (H.observe h) [ 10; 100; 1000; 10_000 ];
  let out =
    Obs.Prometheus.render
      ~counters:[ ("dp.merge_products", 42); ("dp.cells", 7) ]
      ~timers_seconds:[ ("dp.tables", 0.25) ]
      ~histograms:[ ("test_obs.latency_ns", h) ]
      ()
  in
  match Obs.Prometheus.validate out with
  | Ok samples -> check cb "has samples" true (samples > 0)
  | Error e -> Alcotest.failf "exposition invalid: %s\n%s" e out

let test_prometheus_name_mangling () =
  check Alcotest.string "dotted name" "replicaml_dp_power_cells"
    (Obs.Prometheus.metric_name "dp_power.cells");
  check Alcotest.string "hostile characters" "replicaml_a_b_c"
    (Obs.Prometheus.metric_name "a b-c")

let test_prometheus_rejects () =
  List.iter
    (fun s ->
      match Obs.Prometheus.validate s with
      | Ok _ -> Alcotest.failf "validate accepted %S" s
      | Error _ -> ())
    [
      "not a metric line\n";
      "metric_without_value\n";
      "9starts_with_digit 1\n";
      "# TYPE replicaml_x counter\n";
      (* TYPE with no samples *)
    ]

let test_prometheus_histogram_semantics () =
  (* The validator understands histogram families semantically, not
     just lexically: buckets must be cumulative and monotone in [le],
     end at +Inf, and agree with _count; only _bucket/_sum/_count
     samples may appear under a histogram TYPE. *)
  let hist body = "# TYPE replicaml_h histogram\n" ^ body in
  let ok =
    hist
      "replicaml_h_bucket{le=\"1\"} 2\n\
       replicaml_h_bucket{le=\"10\"} 5\n\
       replicaml_h_bucket{le=\"+Inf\"} 7\n\
       replicaml_h_sum 40\n\
       replicaml_h_count 7\n"
  in
  (match Obs.Prometheus.validate ok with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "rejected a well-formed histogram: %s" e);
  List.iter
    (fun (what, s) ->
      match Obs.Prometheus.validate (hist s) with
      | Ok _ -> Alcotest.failf "validate accepted histogram with %s" what
      | Error _ -> ())
    [
      ( "no +Inf bucket",
        "replicaml_h_bucket{le=\"1\"} 2\nreplicaml_h_sum 1\nreplicaml_h_count \
         2\n" );
      ( "non-cumulative buckets",
        "replicaml_h_bucket{le=\"1\"} 5\n\
         replicaml_h_bucket{le=\"10\"} 3\n\
         replicaml_h_bucket{le=\"+Inf\"} 5\n\
         replicaml_h_sum 9\n\
         replicaml_h_count 5\n" );
      ( "count disagreeing with the +Inf bucket",
        "replicaml_h_bucket{le=\"1\"} 2\n\
         replicaml_h_bucket{le=\"+Inf\"} 7\n\
         replicaml_h_sum 40\n\
         replicaml_h_count 8\n" );
      ( "a stray sample under the histogram TYPE",
        "replicaml_h_bucket{le=\"+Inf\"} 1\n\
         replicaml_h_sum 1\n\
         replicaml_h_count 1\n\
         replicaml_h_quantile 3\n" );
      ( "a bucket missing its le label",
        "replicaml_h_bucket 2\n\
         replicaml_h_bucket{le=\"+Inf\"} 2\n\
         replicaml_h_sum 1\n\
         replicaml_h_count 2\n" );
      ("no buckets at all", "replicaml_h_sum 1\nreplicaml_h_count 2\n");
    ]

(* --- Metrics registry --- *)

module M = Obs.Metrics

let find_sample name labels =
  List.find_opt
    (fun s -> s.M.s_name = name && s.M.s_labels = labels)
    (M.samples ())

let test_metrics_interning () =
  let a = M.counter ~labels:[ ("b", "2"); ("a", "1") ] "test_obs.m.reqs" in
  let b = M.counter ~labels:[ ("a", "1"); ("b", "2") ] "test_obs.m.reqs" in
  M.incr a;
  M.add b 2;
  (* Label order is irrelevant: both handles hit the same cell, and the
     exported label set is canonical (sorted). *)
  match find_sample "test_obs.m.reqs" [ ("a", "1"); ("b", "2") ] with
  | Some { M.s_value = M.Sample_counter v; _ } ->
      check (Alcotest.float 0.) "one cell behind both label orders" 3. v
  | _ -> Alcotest.fail "labeled counter missing from samples"

let test_metrics_kind_conflict () =
  ignore (M.gauge "test_obs.m.depth");
  match M.counter "test_obs.m.depth" with
  | _ -> Alcotest.fail "re-registering under another kind must fail"
  | exception Invalid_argument _ -> ()

let test_metrics_samples_sorted () =
  ignore (M.gauge ~labels:[ ("shard", "1") ] "test_obs.m.zz");
  ignore (M.gauge ~labels:[ ("shard", "0") ] "test_obs.m.zz");
  ignore (M.gauge "test_obs.m.aa");
  let keys =
    List.map (fun s -> M.sample_key s) (M.samples ())
  in
  check (Alcotest.list Alcotest.string) "samples arrive sorted"
    (List.sort compare keys) keys

let test_metrics_collector_bridge () =
  M.register_collector ~name:"test_obs.m.bridge" (fun () ->
      [
        {
          M.s_name = "test_obs.m.external";
          s_labels = [ ("src", "bridge") ];
          s_value = M.Sample_gauge 7.;
        };
      ]);
  (match find_sample "test_obs.m.external" [ ("src", "bridge") ] with
  | Some { M.s_value = M.Sample_gauge v; _ } ->
      check (Alcotest.float 0.) "collector row surfaces" 7. v
  | _ -> Alcotest.fail "collector sample missing");
  (* Re-registering under the same name replaces, not duplicates. *)
  M.register_collector ~name:"test_obs.m.bridge" (fun () -> []);
  check cb "replaced collector is gone" true
    (find_sample "test_obs.m.external" [ ("src", "bridge") ] = None)

let test_prometheus_expose_labeled () =
  M.set (M.gauge ~labels:[ ("solver", "dp-test") ] "test_obs.m.load") 1.5;
  let out = Obs.Prometheus.expose () in
  (match Obs.Prometheus.validate out with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "expose output invalid: %s\n%s" e out);
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check cb "label set rendered" true
    (contains "solver=\"dp-test\"" out)

(* --- Gc_stats --- *)

module Gs = Obs.Gc_stats

let test_gc_stats_samples () =
  let names = List.map (fun (s : M.sample) -> s.M.s_name) (Gs.samples ()) in
  List.iter
    (fun n -> check cb (n ^ " present") true (List.mem n names))
    [
      "gc.minor_words";
      "gc.promoted_words";
      "gc.major_words";
      "gc.minor_collections";
      "gc.major_collections";
      "gc.compactions";
      "gc.heap_words";
      "gc.top_heap_words";
    ];
  check cb "peak major heap is positive" true (Gs.peak_major_words () > 0);
  check cb "live words are positive" true (Gs.live_words () > 0)

let test_gc_stats_register_bridges () =
  Gs.register ();
  match
    List.find_opt
      (fun (s : M.sample) -> s.M.s_name = "gc.minor_words")
      (M.samples ())
  with
  | Some { M.s_value = M.Sample_counter v; _ } ->
      check cb "minor-words counter is live and positive" true (v > 0.)
  | _ -> Alcotest.fail "gc collector rows missing from the registry"

let test_gc_heap_counter_shape () =
  let c = Gs.heap_counter ~ts_ns:123 in
  check Alcotest.string "counter name" "gc.heap" c.Obs.Chrome_trace.c_name;
  check ci "timestamp carried through" 123 c.Obs.Chrome_trace.c_ts_ns;
  List.iter
    (fun k ->
      check cb (k ^ " tracked") true
        (List.mem_assoc k c.Obs.Chrome_trace.c_values))
    [ "heap_words"; "minor_words"; "major_words" ]

(* --- Timeseries --- *)

module Ts = Obs.Timeseries

let test_timeseries_validation () =
  (match Ts.create ~capacity:0 () with
  | _ -> Alcotest.fail "capacity 0 must be rejected"
  | exception Invalid_argument _ -> ());
  match Ts.create ~stride:0 () with
  | _ -> Alcotest.fail "stride 0 must be rejected"
  | exception Invalid_argument _ -> ()

let test_timeseries_counter_deltas () =
  let c = M.counter "test_obs.ts.work" in
  let ts = Ts.create () in
  Ts.sample ts ~epoch:1;
  M.add c 5;
  Ts.sample ts ~epoch:2;
  M.add c 2;
  Ts.sample ts ~epoch:3;
  let deltas =
    List.filter_map
      (fun (e, v) -> if e >= 2 then Some (e, v) else None)
      (Ts.series ts "test_obs.ts.work")
  in
  check
    (Alcotest.list (Alcotest.pair ci (Alcotest.float 0.)))
    "counters report per-interval deltas"
    [ (2, 5.); (3, 2.) ]
    deltas

let test_timeseries_ring_and_stride () =
  let ts = Ts.create ~capacity:2 ~stride:2 () in
  List.iter (fun e -> Ts.sample ts ~epoch:e) [ 1; 2; 3; 4; 5 ];
  (* Stride 2 records epochs 1, 3, 5; capacity 2 drops the oldest. *)
  check (Alcotest.list ci) "ring keeps the newest strided epochs" [ 3; 5 ]
    (List.map (fun p -> p.Ts.pt_epoch) (Ts.points ts))

let test_timeseries_stride_beyond_run () =
  (* A stride longer than the run still records the first sample —
     the due check is "samples taken so far", not the epoch number. *)
  let ts = Ts.create ~stride:10 () in
  List.iter (fun e -> Ts.sample ts ~epoch:e) [ 1; 2; 3; 4; 5 ];
  check (Alcotest.list ci) "only the first epoch is due" [ 1 ]
    (List.map (fun p -> p.Ts.pt_epoch) (Ts.points ts))

let test_timeseries_wrap_at_capacity () =
  let ts = Ts.create ~capacity:3 () in
  List.iter (fun e -> Ts.sample ts ~epoch:e) [ 1; 2; 3 ];
  check (Alcotest.list ci) "an exactly-full ring keeps everything" [ 1; 2; 3 ]
    (List.map (fun p -> p.Ts.pt_epoch) (Ts.points ts));
  Ts.sample ts ~epoch:4;
  check (Alcotest.list ci) "one past capacity evicts only the oldest"
    [ 2; 3; 4 ]
    (List.map (fun p -> p.Ts.pt_epoch) (Ts.points ts))

let ts_wrap_id = ref 0

let prop_timeseries_deltas_across_wrap =
  qcheck_case "timeseries: counter deltas stay exact across ring wrap"
    QCheck2.Gen.(list_size (int_range 1 24) (int_range 0 100))
    (fun increments ->
      (* Fresh counter per case: the delta baseline is per-series. *)
      incr ts_wrap_id;
      let name = Printf.sprintf "test_obs.ts.wrap%d" !ts_wrap_id in
      let c = M.counter name in
      let ts = Ts.create ~capacity:4 () in
      List.iteri
        (fun i inc ->
          M.add c inc;
          Ts.sample ts ~epoch:(i + 1))
        increments;
      (* Retained points report exactly the increment applied before
         their sample, even after eviction rotated the ring. *)
      let expected =
        List.filteri
          (fun i _ -> i >= List.length increments - 4)
          (List.mapi (fun i inc -> (i + 1, float_of_int inc)) increments)
      in
      Ts.series ts name = expected)

let test_timeseries_openmetrics_validates () =
  let ts = Ts.create () in
  Ts.sample ts ~epoch:1;
  Ts.sample ts ~epoch:2;
  match Obs.Prometheus.validate (Ts.to_openmetrics ts) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "openmetrics export invalid: %s" e

(* --- Flight recorder --- *)

module Fr = Obs.Flight_recorder

let test_flight_recorder_validation () =
  match Fr.create ~k:(-1.) ~path:"/dev/null" () with
  | _ -> Alcotest.fail "negative k must be rejected"
  | exception Invalid_argument _ -> ()

let test_flight_recorder_k0_dumps_every_epoch () =
  let path = Filename.temp_file "test_obs_fr" ".json" in
  let fr = Fr.create ~k:0.0 ~path () in
  with_tracing (fun () ->
      for e = 1 to 3 do
        Span.with_span "epoch" (fun () -> ());
        check cb "k=0 dumps each epoch" true
          (Fr.record fr ~epoch:e ~latency_ns:(1_000 * e))
      done);
  check ci "three dumps" 3 (Fr.dumps fr);
  check (Alcotest.option ci) "last dump epoch" (Some 3) (Fr.last_dump_epoch fr);
  (match Obs.Trace_reader.of_file path with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "dump is not a readable trace: %s" e);
  Sys.remove path

let test_flight_recorder_anomaly_threshold () =
  let path = Filename.temp_file "test_obs_fr" ".json" in
  let fr = Fr.create ~k:3.0 ~path () in
  with_tracing (fun () ->
      (* Steady baseline: never anomalous, and no dump before five
         latencies are banked regardless. *)
      for e = 1 to 8 do
        Span.with_span "epoch" (fun () -> ());
        check cb "steady epoch never dumps" false
          (Fr.record fr ~epoch:e ~latency_ns:1_000)
      done;
      Span.with_span "spike" (fun () -> ());
      check cb "4x the median dumps" true
        (Fr.record fr ~epoch:9 ~latency_ns:4_000));
  check ci "exactly one dump" 1 (Fr.dumps fr);
  Sys.remove path

(* --- Bench history: trend --- *)

let obs_envelope guard =
  Json.Obj
    [
      ("schema_version", Json.Int Json.schema_version);
      ("bench", Json.String "obs");
      ("guard_ns_per_check", Json.Float guard);
    ]

let test_trend_direction () =
  let history = List.map obs_envelope [ 5.; 4.; 3. ] in
  match Obs.Bench_history.trend ~kind:"obs" history with
  | Error e -> Alcotest.failf "trend failed: %s" e
  | Ok r ->
      check ci "window holds all runs" 3 r.Obs.Bench_history.t_runs;
      let tm =
        List.find
          (fun m -> m.Obs.Bench_history.tm_metric = "guard_ns_per_check")
          r.Obs.Bench_history.t_metrics
      in
      check cb "falling lower-better metric improves" true
        (tm.Obs.Bench_history.tm_verdict = "improving");
      check cb "slope is negative" true (tm.Obs.Bench_history.tm_slope < 0.)

let test_trend_needs_two_runs () =
  match Obs.Bench_history.trend ~kind:"obs" [ obs_envelope 5. ] with
  | Ok _ -> Alcotest.fail "one run cannot trend"
  | Error _ -> ()

(* --- Stats_counters: snapshot/diff and the monotonic clock --- *)

let test_snapshot_diff () =
  let c = Stats_counters.counter "test_obs.diff_counter" in
  let before = Stats_counters.snapshot () in
  Stats_counters.add c 5;
  Stats_counters.incr c;
  let after = Stats_counters.snapshot () in
  let d = Stats_counters.diff before after in
  check ci "delta attributed" 6 (List.assoc "test_obs.diff_counter" d);
  check cb "zero deltas omitted" false
    (List.exists (fun (_, v) -> v = 0) d);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string ci))
    "quiescent diff is empty" []
    (Stats_counters.diff after (Stats_counters.snapshot ()))

let test_diff_counts_new_counters_from_zero () =
  let before = Stats_counters.snapshot () in
  let c = Stats_counters.counter "test_obs.registered_later" in
  Stats_counters.add c 3;
  let d = Stats_counters.diff before (Stats_counters.snapshot ()) in
  check ci "absent in before counts from 0" 3
    (List.assoc "test_obs.registered_later" d)

let test_timer_seconds_non_negative () =
  (* Regression: timers once used Unix.gettimeofday, which an NTP step
     can pull backwards mid-measurement; on the monotonic clock elapsed
     time can never be negative. *)
  let t = Stats_counters.timer "test_obs.timer" in
  for _ = 1 to 100 do
    Stats_counters.time t (fun () -> Sys.opaque_identity (Sys.opaque_identity 0))
    |> ignore
  done;
  check cb "accumulated seconds >= 0" true (Stats_counters.seconds t >= 0.)

let test_clock_monotone () =
  let rec loop prev n =
    if n > 0 then begin
      let now = Obs.Clock.now_ns () in
      check cb "clock never goes backwards" true (now >= prev);
      loop now (n - 1)
    end
  in
  loop (Obs.Clock.now_ns ()) 1000

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          prop_each_observation_in_one_bin;
          prop_quantiles_monotone;
          prop_quantile_brackets_value;
          Alcotest.test_case "edge cases" `Quick test_histogram_edges;
          Alcotest.test_case "registry" `Quick test_histogram_registry;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting well-formed" `Quick test_span_nesting;
          Alcotest.test_case "disabled records nothing" `Quick
            test_span_disabled_records_nothing;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "set_capacity rejects non-positive" `Quick
            test_span_set_capacity_validation;
          Alcotest.test_case "alloc capture attributes words" `Quick
            test_span_alloc_capture;
          Alcotest.test_case "alloc off records zeros" `Quick
            test_span_alloc_off_records_zero;
        ] );
      ( "gc-stats",
        [
          Alcotest.test_case "samples cover the gc axis" `Quick
            test_gc_stats_samples;
          Alcotest.test_case "register bridges into metrics" `Quick
            test_gc_stats_register_bridges;
          Alcotest.test_case "heap counter shape" `Quick
            test_gc_heap_counter_shape;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "chrome-trace",
        [
          Alcotest.test_case "exporter validates" `Quick test_chrome_trace_valid;
          Alcotest.test_case "rejects malformed" `Quick
            test_chrome_trace_rejects;
          Alcotest.test_case "structurally deterministic" `Quick
            test_chrome_trace_deterministic_structure;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "exposition validates" `Quick test_prometheus_valid;
          Alcotest.test_case "name mangling" `Quick test_prometheus_name_mangling;
          Alcotest.test_case "rejects malformed" `Quick test_prometheus_rejects;
          Alcotest.test_case "histogram family semantics" `Quick
            test_prometheus_histogram_semantics;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "labeled interning" `Quick test_metrics_interning;
          Alcotest.test_case "kind conflict rejected" `Quick
            test_metrics_kind_conflict;
          Alcotest.test_case "samples sorted" `Quick test_metrics_samples_sorted;
          Alcotest.test_case "collector bridge" `Quick
            test_metrics_collector_bridge;
          Alcotest.test_case "expose renders labels" `Quick
            test_prometheus_expose_labeled;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "rejects bad sizes" `Quick
            test_timeseries_validation;
          Alcotest.test_case "counter deltas" `Quick
            test_timeseries_counter_deltas;
          Alcotest.test_case "ring and stride" `Quick
            test_timeseries_ring_and_stride;
          Alcotest.test_case "stride beyond the run" `Quick
            test_timeseries_stride_beyond_run;
          Alcotest.test_case "wrap at exactly capacity" `Quick
            test_timeseries_wrap_at_capacity;
          prop_timeseries_deltas_across_wrap;
          Alcotest.test_case "openmetrics validates" `Quick
            test_timeseries_openmetrics_validates;
        ] );
      ( "flight-recorder",
        [
          Alcotest.test_case "rejects bad config" `Quick
            test_flight_recorder_validation;
          Alcotest.test_case "k=0 dumps every epoch" `Quick
            test_flight_recorder_k0_dumps_every_epoch;
          Alcotest.test_case "anomaly threshold" `Quick
            test_flight_recorder_anomaly_threshold;
        ] );
      ( "bench-history",
        [
          Alcotest.test_case "trend direction" `Quick test_trend_direction;
          Alcotest.test_case "trend needs two runs" `Quick
            test_trend_needs_two_runs;
        ] );
      ( "stats-counters",
        [
          Alcotest.test_case "snapshot/diff" `Quick test_snapshot_diff;
          Alcotest.test_case "diff counts new counters from 0" `Quick
            test_diff_counts_new_counters_from_zero;
          Alcotest.test_case "timer seconds non-negative" `Quick
            test_timer_seconds_non_negative;
          Alcotest.test_case "monotonic clock" `Quick test_clock_monotone;
        ] );
    ]
