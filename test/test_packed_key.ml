(* Property tests for the packed DP state keys ({!Packed_key}) and the
   packed/wide agreement of {!Dp_power}. *)

open Replica_tree
open Replica_core
open Helpers

(* Random layout plus vectors drawn within its field maxima, all
   derived from one qcheck seed so shrinking reproduces instances. *)
type instance = {
  m : int;
  count_max : int array;
  flow_max : int;
  layout : Packed_key.layout option;
  va : int array;  (* m + m*m + 1 entries, within maxima *)
  vb : int array;
}

let vector_within rng count_max flow_max =
  let nf = Array.length count_max in
  Array.init (nf + 1) (fun i ->
      if i < nf then Rng.int rng (count_max.(i) + 1)
      else Rng.int rng (flow_max + 1))

let instance_gen =
  QCheck2.Gen.map
    (fun seed ->
      let rng = Rng.create seed in
      let m = 1 + Rng.int rng 3 in
      let nf = m + (m * m) in
      let count_max = Array.init nf (fun _ -> Rng.int rng 7) in
      let flow_max = Rng.int rng 31 in
      let layout = Packed_key.make ~m ~count_max ~flow_max in
      let va = vector_within rng count_max flow_max in
      let vb = vector_within rng count_max flow_max in
      { m; count_max; flow_max; layout; va; vb })
    QCheck2.Gen.(int_bound 1_000_000)

let prop_roundtrip =
  qcheck_case "packed key: encode/decode roundtrip" instance_gen (fun i ->
      match i.layout with
      | None -> true
      | Some l -> Packed_key.decode l (Packed_key.encode l i.va) = i.va)

let prop_order =
  (* Integer comparison of packed keys is exactly lexicographic
     comparison of the wide vectors — the property the flow-dominance
     prune's minimal-key winner relies on. *)
  qcheck_case "packed key: int order = lexicographic vector order"
    instance_gen (fun i ->
      match i.layout with
      | None -> true
      | Some l ->
          compare (Packed_key.encode l i.va) (Packed_key.encode l i.vb)
          = compare i.va i.vb)

let prop_counts_group =
  (* [counts] (= key lsr flow_bits) agrees iff the vectors agree on
     every field but the flow — the prune's grouping criterion. *)
  qcheck_case "packed key: counts prefix groups like the wide prefix"
    instance_gen (fun i ->
      match i.layout with
      | None -> true
      | Some l ->
          let nf = Array.length i.count_max in
          let ka = Packed_key.encode l i.va
          and kb = Packed_key.encode l i.vb in
          Packed_key.counts l ka = Packed_key.counts l kb
          = (Array.sub i.va 0 nf = Array.sub i.vb 0 nf))

let prop_carry_free_add =
  (* Keys of disjoint subtrees add field-wise without carries as long
     as every field sum stays within the sized maxima. *)
  qcheck_case "packed key: field-wise add is carry-free" instance_gen
    (fun i ->
      match i.layout with
      | None -> true
      | Some l ->
          let nf = Array.length i.count_max in
          let half = Array.map (fun v -> v / 2) i.va in
          let rest = Array.mapi (fun j v -> v - half.(j)) i.va in
          let sum = Packed_key.encode l half + Packed_key.encode l rest in
          ignore nf;
          sum = Packed_key.encode l i.va)

let prop_bump_flow_fields =
  qcheck_case "packed key: get/bump/zero_flow/flow agree with the vector"
    instance_gen (fun i ->
      match i.layout with
      | None -> true
      | Some l ->
          let nf = Array.length i.count_max in
          let k = Packed_key.encode l i.va in
          Packed_key.flow l k = i.va.(nf)
          && Array.for_all Fun.id
               (Array.init nf (fun f -> Packed_key.get l k f = i.va.(f)))
          &&
          let zeroed = Array.copy i.va in
          zeroed.(nf) <- 0;
          Packed_key.zero_flow l k = Packed_key.encode l zeroed
          &&
          (* bump the first field that has headroom, if any *)
          let f = ref (-1) in
          Array.iteri
            (fun j maxv -> if !f < 0 && i.va.(j) < maxv then f := j)
            i.count_max;
          !f < 0
          ||
          let bumped = Array.copy i.va in
          bumped.(!f) <- bumped.(!f) + 1;
          Packed_key.bump l k !f = Packed_key.encode l bumped)

(* The 62-bit budget is exact: a layout of total width 62 packs, one
   more bit does not. Widths: a field with maximum (1 lsl b) - 1 is b
   bits wide. With m = 1 there are two count fields plus the flow. *)
let test_budget_boundary () =
  let mk c0 c1 fl =
    Packed_key.make ~m:1 ~count_max:[| c0; c1 |] ~flow_max:fl
  in
  let wide b = (1 lsl b) - 1 in
  Alcotest.(check bool)
    "62 bits fits" true
    (mk (wide 31) (wide 15) (wide 16) <> None);
  Alcotest.(check bool)
    "63 bits overflows" true
    (mk (wide 31) (wide 16) (wide 16) = None);
  Alcotest.(check bool)
    "zero-width fields are free" true
    (mk (wide 62) 0 0 <> None);
  (match mk (wide 31) (wide 15) (wide 16) with
  | Some l -> Alcotest.(check int) "total_bits" 62 (Packed_key.total_bits l)
  | None -> Alcotest.fail "62-bit layout must pack");
  Alcotest.check_raises "negative maxima rejected"
    (Invalid_argument "Packed_key.make: negative count_max") (fun () ->
      ignore (Packed_key.make ~m:1 ~count_max:[| -1; 0 |] ~flow_max:0))

(* Packed and wide solves agree on the optimum (power, cost) and both
   return valid placements achieving them; the frontier agrees as a
   (cost, power) point set. *)
let qos_free_tree_gen =
  QCheck2.Gen.map
    (fun (seed, nodes, pre) ->
      let rng = Rng.create seed in
      let nodes = 1 + (nodes mod 9) in
      let t = small_tree rng ~nodes ~max_requests:5 in
      Generator.add_pre_existing rng t (pre mod (nodes + 1)))
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_bound 1_000) (int_bound 1_000))

let prop_packed_vs_wide_solve =
  qcheck_case ~count:60 "dp_power: packed and wide solves agree"
    qos_free_tree_gen (fun t ->
      List.for_all
        (fun bound ->
          let solve packed =
            Dp_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
              ~bound ~packed ()
          in
          match (solve true, solve false) with
          | None, None -> true
          | Some p, Some w ->
              abs_float (p.Dp_power.power -. w.Dp_power.power) < 1e-9
              && abs_float (p.Dp_power.cost -. w.Dp_power.cost) < 1e-9
              && Solution.is_valid t
                   ~w:(Modes.max_capacity modes_2)
                   p.Dp_power.solution
          | Some _, None | None, Some _ -> false)
        [ 2.; 5.; infinity ])

let prop_packed_vs_wide_frontier =
  qcheck_case ~count:40 "dp_power: packed and wide frontiers agree"
    qos_free_tree_gen (fun t ->
      let points l =
        List.map (fun r -> (r.Dp_power.cost, r.Dp_power.power)) l
      in
      (* [frontier] has no ?packed switch; pit the automatic (packed)
         path against the wide candidates by comparing against bounded
         wide solves at every frontier cost. *)
      let fr =
        Dp_power.frontier t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
      in
      List.for_all
        (fun (c, p) ->
          match
            Dp_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
              ~bound:c ~packed:false ()
          with
          | Some w -> abs_float (w.Dp_power.power -. p) < 1e-9
          | None -> false)
        (points fr))

let () =
  Alcotest.run "packed_key"
    [
      ( "packed key",
        [
          prop_roundtrip;
          prop_order;
          prop_counts_group;
          prop_carry_free_add;
          prop_bump_flow_fields;
          Alcotest.test_case "62-bit budget boundary" `Quick
            test_budget_boundary;
        ] );
      ( "packed vs wide",
        [ prop_packed_vs_wide_solve; prop_packed_vs_wide_frontier ] );
    ]
