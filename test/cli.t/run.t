The CLI generates deterministic trees from a seed:

  $ replica_cli generate --nodes 6 --pre 1 --seed 3
  - node 0 [pre-existing, mode 1] clients: 3
    - node 1
    - node 2
    - node 3
    - node 4
    - node 5
  serialized: -1 p1 c3;0 p. c;0 p. c;0 p. c;0 p. c;0 p. c

Structural statistics:

  $ replica_cli generate --nodes 6 --pre 1 --seed 3 --stats
  nodes: 6  height: 1  leaves: 5
  branching: 5..5 (mean 5.00)
  clients: 1  requests: 3 (mean 3.00/client, max node demand 3)
  pre-existing servers: 1
  nodes per depth: 0:1 1:5
  branching histogram: 0:5 5:1

Solving one instance with the update-aware DP:

  $ replica_cli solve --algo dp-withpre --nodes 6 --pre 2 --seed 5 -w 8
  placement: 0 servers for 0 requests (W = 8)
  deleted pre-existing servers: 1 5
  reused 0 of 2 pre-existing servers
  cost (Eq. 2): 0.020

The greedy baseline on the same instance:

  $ replica_cli solve --algo greedy --nodes 6 --pre 2 --seed 5 -w 8
  placement: 0 servers for 0 requests (W = 8)
  deleted pre-existing servers: 1 5
  reused 0 of 2 pre-existing servers
  cost (Eq. 2): 0.020

Experiment 1 at toy scale, as CSV:

  $ replica_cli exp1 -q --trees 2 --nodes 8 --seed 1 --csv
  E,DP reused,+-95%,GR reused,+-95%,DP servers,GR servers,trees
  0,0.00,0.00,0.00,0.00,1.50,1.50,2
  1,0.00,0.00,0.00,0.00,1.50,1.50,2
  2,0.50,0.69,0.00,0.00,1.50,1.50,2
  3,0.50,0.69,0.50,0.69,1.50,1.50,2
  4,1.00,1.39,0.50,0.69,1.50,1.50,2
  5,1.00,0.00,1.00,0.00,1.50,1.50,2
  6,0.50,0.69,0.50,0.69,1.50,1.50,2
  7,1.50,0.69,1.50,0.69,1.50,1.50,2
  8,1.50,0.69,1.50,0.69,1.50,1.50,2

The power DP with a cost bound:

  $ replica_cli solve --algo dp-power --nodes 8 --pre 2 --seed 7 -w 10 --bound 6
  placement: 4 servers for 15 requests (modes 5 10)
    node 0    load   5 -> mode W1 (137.5 W)  new
    node 3    load   5 -> mode W1 (137.5 W)  reused (was mode 2)
    node 6    load   2 -> mode W1 (137.5 W)  new
    node 7    load   3 -> mode W1 (137.5 W)  new
  deleted pre-existing servers: 4
  power (Eq. 3): 550.000
  cost (Eq. 4): 4.311

--stats appends the solver's counter registry (counters only — timers are
wall-clock and would not be reproducible here):

  $ replica_cli solve --algo dp-power --nodes 8 --pre 2 --seed 7 -w 10 --bound 6 --stats
  placement: 4 servers for 15 requests (modes 5 10)
    node 0    load   5 -> mode W1 (137.5 W)  new
    node 3    load   5 -> mode W1 (137.5 W)  reused (was mode 2)
    node 6    load   2 -> mode W1 (137.5 W)  new
    node 7    load   3 -> mode W1 (137.5 W)  new
  deleted pre-existing servers: 4
  power (Eq. 3): 550.000
  cost (Eq. 4): 4.311
  --- solver statistics ---
  dp_power.capacity_rejected 16
  dp_power.cells_created     123
  dp_power.merge_products    128
  dp_power.peak_table_size   38
  dp_power.merge_products_per_node count 7  p50 15  p90 63  p99 63

Forcing dominance pruning on the same instance gives the same answer with
fewer merge products:

  $ replica_cli solve --algo dp-power --nodes 8 --pre 2 --seed 7 -w 10 --bound 6 --stats --prune true
  placement: 4 servers for 15 requests (modes 5 10)
    node 0    load   5 -> mode W1 (137.5 W)  new
    node 3    load   5 -> mode W1 (137.5 W)  reused (was mode 2)
    node 6    load   2 -> mode W1 (137.5 W)  new
    node 7    load   3 -> mode W1 (137.5 W)  new
  deleted pre-existing servers: 4
  power (Eq. 3): 550.000
  cost (Eq. 4): 4.311
  --- solver statistics ---
  dp_power.capacity_rejected 8
  dp_power.cells_created     101
  dp_power.dominance_pruned  17
  dp_power.merge_products    94
  dp_power.peak_table_size   24
  dp_power.merge_products_per_node count 7  p50 15  p90 31  p99 31

The greedy power baseline and the local-search heuristic on the same instance:

  $ replica_cli solve --algo gr-power --nodes 8 --pre 2 --seed 7 -w 10 --bound 6
  placement: 4 servers for 15 requests (modes 5 10)
    node 0    load   5 -> mode W1 (137.5 W)  new
    node 3    load   5 -> mode W1 (137.5 W)  reused (was mode 2)
    node 6    load   2 -> mode W1 (137.5 W)  new
    node 7    load   3 -> mode W1 (137.5 W)  new
  deleted pre-existing servers: 4
  power (Eq. 3): 550.000
  cost (Eq. 4): 4.311

  $ replica_cli solve --algo heuristic --nodes 8 --pre 2 --seed 7 -w 10 --bound 6
  placement: 4 servers for 15 requests (modes 5 10)
    node 0    load   5 -> mode W1 (137.5 W)  new
    node 3    load   5 -> mode W1 (137.5 W)  reused (was mode 2)
    node 6    load   2 -> mode W1 (137.5 W)  new
    node 7    load   3 -> mode W1 (137.5 W)  new
  deleted pre-existing servers: 4
  power (Eq. 3): 550.000
  cost (Eq. 4): 4.311

Update-policy ablation at toy scale:

  $ replica_cli policies --trees 2 --nodes 10 --epochs 4 --seed 2 --csv
  policy,avg total cost,avg reconfigurations,avg invalid epochs
  systematic,15.25,4.00,0.00
  lazy,5.25,1.00,0.00
  periodic(4),8.38,2.00,0.00
  drift(0.20),5.25,1.00,0.00

Power-heuristics ablation at toy scale (--no-time blanks the wall-clock
column so the output is deterministic):

  $ replica_cli heuristics --trees 2 --nodes 10 --pre 2 --seed 2 --csv --no-time
  algorithm,solved,avg overhead %,worst overhead %,avg seconds
  dp (optimal),2,0.00,0.00,-
  hill-climb,2,0.00,0.00,-
  multi-start,2,0.00,0.00,-
  anneal,2,0.00,0.00,-
  gr-sweep,2,0.00,0.00,-

Experiment 3 at toy scale, as CSV:

  $ replica_cli exp3 -q --trees 2 --nodes 10 --pre 2 --seed 2 --csv
  cost bound,DP 1/power,GR 1/power,DP feasible,GR feasible
  3.21,0.000231,0.000000,1,0
  3.44,0.000231,0.000231,1,1
  3.67,0.000231,0.000231,1,1
  3.89,0.000231,0.000231,1,1
  4.12,0.000231,0.000231,1,1
  4.35,0.000351,0.000231,1,1
  4.57,0.000702,0.000702,2,2
  4.80,0.000702,0.000702,2,2
  5.03,0.000702,0.000702,2,2
  5.26,0.000702,0.000702,2,2
  5.48,0.001078,0.000702,2,2
  5.71,0.001078,0.001078,2,2
  5.94,0.001078,0.001078,2,2
  6.17,0.001078,0.001078,2,2
  6.39,0.001078,0.001078,2,2
  6.62,0.001333,0.001333,2,2

Trace-driven pipeline at toy scale:

  $ replica_cli trace --nodes 12 --seed 6 --horizon 6 --window 2
  trace: 39 requests over 6.0 time units
  epoch  1: demand    4  changed  12  dirty  12   1 servers  reconfigured cost 1.50
  epoch  2: demand    8  changed   3  dirty   4   1 servers  stale 1
  epoch  3: demand   10  changed   2  dirty   3   1 servers  stale 2
  total: 1 reconfigurations, bill 1.50, 0 invalid epochs

The online engine over a flash-crowd trace; full and incremental
re-solving print identical timelines (only the work differs):

  $ replica_cli engine --nodes 12 --seed 6 --horizon 6 --window 2 \
  >   --workload flash --policy periodic:2 --solver incremental --no-time
  trace: 57 requests over 5.9 time units
  epoch  1: demand   12  changed  12  dirty  12   2 servers  reconfigured cost 3.00
  epoch  2: demand   12  changed   2  dirty   4   2 servers  reconfigured cost 2.00
  epoch  3: demand    7  changed   3  dirty   4   2 servers  stale 1
  total: 2 reconfigurations, bill 5.00, 0 invalid epochs

  $ replica_cli engine --nodes 12 --seed 6 --horizon 6 --window 2 \
  >   --workload flash --policy periodic:2 --solver full --no-time
  trace: 57 requests over 5.9 time units
  epoch  1: demand   12  changed  12  dirty  12   2 servers  reconfigured cost 3.00
  epoch  2: demand   12  changed   2  dirty   4   2 servers  reconfigured cost 2.00
  epoch  3: demand    7  changed   3  dirty   4   2 servers  stale 1
  total: 2 reconfigurations, bill 5.00, 0 invalid epochs

Power objective: each epoch also reports the Eq. 3 power in force:

  $ replica_cli engine --nodes 12 --seed 6 --horizon 6 --window 2 \
  >   --power --policy systematic --no-time
  trace: 39 requests over 6.0 time units
  epoch  1: demand    4  changed  12  dirty  12   1 servers  reconfigured cost 1.10  power 137.5
  epoch  2: demand    8  changed   3  dirty   4   2 servers  reconfigured cost 2.10  power 275.0
  epoch  3: demand   10  changed   2  dirty   3   2 servers  reconfigured cost 2.00  power 275.0
  total: 3 reconfigurations, bill 5.20, 0 invalid epochs

Span tracing: --trace records the run as Chrome trace-event JSON and
obs-validate checks it structurally without external tooling. Event
counts are workload-deterministic (one "X" event per completed span):

  $ replica_cli solve --algo dp-withpre --nodes 6 --pre 2 --seed 5 -w 8 \
  >   --trace solve_trace.json
  placement: 0 servers for 0 requests (W = 8)
  deleted pre-existing servers: 1 5
  reused 0 of 2 pre-existing servers
  cost (Eq. 2): 0.020
  $ replica_cli obs-validate --trace solve_trace.json
  trace solve_trace.json: valid chrome trace, 12 events

The engine exports both a trace and a Prometheus metrics snapshot, and
the traced timeline is identical to the untraced one above:

  $ replica_cli engine --nodes 12 --seed 6 --horizon 6 --window 2 \
  >   --workload flash --policy periodic:2 --no-time \
  >   --trace engine_trace.json --metrics engine_metrics.prom
  trace: 57 requests over 5.9 time units
  epoch  1: demand   12  changed  12  dirty  12   2 servers  reconfigured cost 3.00
  epoch  2: demand   12  changed   2  dirty   4   2 servers  reconfigured cost 2.00
  epoch  3: demand    7  changed   3  dirty   4   2 servers  stale 1
  total: 2 reconfigurations, bill 5.00, 0 invalid epochs
  $ replica_cli obs-validate --trace engine_trace.json --metrics engine_metrics.prom
  trace engine_trace.json: valid chrome trace, 60 events
  metrics engine_metrics.prom: valid prometheus exposition

obs-validate rejects malformed artifacts and fails loudly when given
nothing to check:

  $ echo '{}' > bogus.json
  $ replica_cli obs-validate --trace bogus.json
  trace bogus.json: INVALID: missing "traceEvents"
  [1]
  $ replica_cli obs-validate
  obs-validate: nothing to validate (pass --trace and/or --metrics)
  [2]
