The CLI generates deterministic trees from a seed:

  $ replica_cli generate --nodes 6 --pre 1 --seed 3
  - node 0 [pre-existing, mode 1] clients: 3
    - node 1
    - node 2
    - node 3
    - node 4
    - node 5
  serialized: -1 p1 c3;0 p. c;0 p. c;0 p. c;0 p. c;0 p. c

Structural statistics:

  $ replica_cli generate --nodes 6 --pre 1 --seed 3 --stats
  nodes: 6  height: 1  leaves: 5
  branching: 5..5 (mean 5.00)
  clients: 1  requests: 3 (mean 3.00/client, max node demand 3)
  pre-existing servers: 1
  nodes per depth: 0:1 1:5
  branching histogram: 0:5 5:1

Solving one instance with the update-aware DP:

  $ replica_cli solve --algo dp-withpre --nodes 6 --pre 2 --seed 5 -w 8
  placement: 0 servers for 0 requests (W = 8)
  deleted pre-existing servers: 1 5
  reused 0 of 2 pre-existing servers
  cost (Eq. 2): 0.020

The greedy baseline on the same instance:

  $ replica_cli solve --algo greedy --nodes 6 --pre 2 --seed 5 -w 8
  placement: 0 servers for 0 requests (W = 8)
  deleted pre-existing servers: 1 5
  reused 0 of 2 pre-existing servers
  cost (Eq. 2): 0.020

The registry is self-describing: --list-algos prints one row per
registered solver with its capability flags (the same data as the
DESIGN.md matrix):

  $ replica_cli solve --list-algos
  name            solves      kind       access    pre  bound  qos  bw   coupling  prune  domains  memo  max N
  greedy          cost        exact      closest   -    -      -    -    yes       -      -        -     -
  dp-nopre        cost        exact      closest   -    -      -    -    yes       -      -        -     -
  dp-withpre      cost        exact      closest   yes  -      -    -    yes       -      -        yes   -
  heuristic-cost  cost        heuristic  closest   yes  -      -    -    yes       -      -        -     -
  dp-qos          cost        exact      closest   yes  -      yes  yes  yes       -      -        -     -
  greedy-qos      cost        heuristic  closest   -    -      yes  yes  yes       -      -        -     -
  dp-power        power       exact      closest   yes  yes    -    -    -         yes    yes      yes   -
  gr-power        power       heuristic  closest   -    yes    -    -    -         -      -        -     -
  heuristic       power       heuristic  closest   yes  yes    -    -    -         -      -        -     -
  multi-start     power       heuristic  closest   yes  yes    -    -    -         -      -        -     -
  anneal          power       heuristic  closest   yes  yes    -    -    -         -      -        -     -
  multiple        cost        exact      multiple  -    -      -    -    -         -      -        -     -
  upwards         cost        heuristic  upwards   -    -      -    -    -         -      -        -     -
  brute           cost+power  exact      closest   yes  yes    yes  yes  yes       -      -        -     20

Capability mismatches share one error path and exit 2: an unknown
name, or a finite cost bound on a solver that cannot honour it (the
result would silently be a different problem's optimum):

  $ replica_cli solve --algo nope --nodes 6 --seed 5 -w 8
  replica_cli: unknown algorithm "nope" (try --list-algos for the registry)
  [2]

  $ replica_cli solve --algo greedy --nodes 6 --pre 2 --seed 5 -w 8 --bound 3
  replica_cli: greedy does not support a finite cost bound
  [2]

Tuning flags a solver ignores warn (on stderr) instead of silently
dropping; the solve still runs:

  $ replica_cli solve --algo greedy --nodes 6 --pre 2 --seed 5 -w 8 --prune true
  replica_cli: warning: greedy has no dominance pruning; --prune ignored
  placement: 0 servers for 0 requests (W = 8)
  deleted pre-existing servers: 1 5
  reused 0 of 2 pre-existing servers
  cost (Eq. 2): 0.020

Constrained instances: --qos bounds every client's hop distance to its
server (serialized as r@q) and --bw caps each link at S times its
subtree demand (a trailing b<cap> token). Unconstrained trees
serialize exactly as before; annotated ones round-trip through the
same format:

  $ replica_cli generate --shape high --nodes 8 --pre 2 --seed 4 --qos 1 --bw 1.0
  - node 0 clients: 3@1
    - node 1 [bw 14] clients: 3@1
      - node 4 [bw 6] clients: 6@1
      - node 5 [bw 3] clients: 3@1
      - node 6 [pre-existing, mode 1] [bw 2] clients: 2@1
    - node 2 [pre-existing, mode 1] [bw 3]
      - node 7 [bw 3] clients: 3@1
    - node 3
  serialized: -1 p. c3@1;0 p. c3@1 b14;0 p1 c b3;0 p. c;1 p. c6@1 b6;1 p. c3@1 b3;1 p1 c2@1 b2;2 p. c3@1 b3

With constraints present the default solver becomes the constrained
exact DP (dp-qos); --algo greedy-qos picks the feasibility-complete
heuristic instead:

  $ replica_cli solve --shape high --nodes 8 --pre 2 --seed 4 -w 8 --qos 1
  placement: 4 servers for 16 requests (W = 8)
    node 0    load   1/8  new
    node 1    load   8/8  new
    node 2    load   5/8  reused (was mode 2)
    node 6    load   2/8  reused (was mode 2)
  reused 2 of 2 pre-existing servers
  cost (Eq. 2): 4.200

  $ replica_cli solve --shape high --nodes 8 --pre 2 --seed 4 -w 8 --qos 1 --algo greedy-qos
  placement: 4 servers for 16 requests (W = 8)
    node 0    load   1/8  new
    node 1    load   8/8  new
    node 2    load   5/8  reused (was mode 2)
    node 4    load   2/8  new
  deleted pre-existing servers: 6
  reused 1 of 2 pre-existing servers
  cost (Eq. 2): 4.310

A solver whose capability row lacks qos/bw rejects constrained
instances through the same exit-2 path as the other mismatches:

  $ replica_cli solve --shape high --nodes 8 --pre 2 --seed 4 -w 8 --qos 1 --algo dp-withpre
  replica_cli: dp-withpre cannot enforce the tree's QoS bounds
  [2]

  $ replica_cli solve --shape high --nodes 8 --pre 2 --seed 4 -w 8 --bw 0.5 --algo greedy
  replica_cli: greedy cannot enforce the tree's link bandwidth caps
  [2]

Experiment 1 at toy scale, as CSV:

  $ replica_cli exp1 -q --trees 2 --nodes 8 --seed 1 --csv
  E,DP reused,+-95%,GR reused,+-95%,DP servers,GR servers,trees
  0,0.00,0.00,0.00,0.00,1.50,1.50,2
  1,0.00,0.00,0.00,0.00,1.50,1.50,2
  2,0.50,0.69,0.00,0.00,1.50,1.50,2
  3,0.50,0.69,0.50,0.69,1.50,1.50,2
  4,1.00,1.39,0.50,0.69,1.50,1.50,2
  5,1.00,0.00,1.00,0.00,1.50,1.50,2
  6,0.50,0.69,0.50,0.69,1.50,1.50,2
  7,1.50,0.69,1.50,0.69,1.50,1.50,2
  8,1.50,0.69,1.50,0.69,1.50,1.50,2

The power DP with a cost bound:

  $ replica_cli solve --algo dp-power --nodes 8 --pre 2 --seed 7 -w 10 --bound 6
  placement: 4 servers for 15 requests (modes 5 10)
    node 0    load   5 -> mode W1 (137.5 W)  new
    node 3    load   5 -> mode W1 (137.5 W)  reused (was mode 2)
    node 6    load   2 -> mode W1 (137.5 W)  new
    node 7    load   3 -> mode W1 (137.5 W)  new
  deleted pre-existing servers: 4
  power (Eq. 3): 550.000
  cost (Eq. 4): 4.311

--stats appends the solver's counter registry (counters only — timers are
wall-clock and would not be reproducible here):

  $ replica_cli solve --algo dp-power --nodes 8 --pre 2 --seed 7 -w 10 --bound 6 --stats
  placement: 4 servers for 15 requests (modes 5 10)
    node 0    load   5 -> mode W1 (137.5 W)  new
    node 3    load   5 -> mode W1 (137.5 W)  reused (was mode 2)
    node 6    load   2 -> mode W1 (137.5 W)  new
    node 7    load   3 -> mode W1 (137.5 W)  new
  deleted pre-existing servers: 4
  power (Eq. 3): 550.000
  cost (Eq. 4): 4.311
  --- solver statistics ---
  dp_power.capacity_rejected 16
  dp_power.cells_created     123
  dp_power.merge_products    128
  dp_power.peak_table_size   38
  dp_power.merge_products_per_node count 7  p50 11  p90 45  p99 45

Forcing dominance pruning on the same instance gives the same answer with
fewer merge products:

  $ replica_cli solve --algo dp-power --nodes 8 --pre 2 --seed 7 -w 10 --bound 6 --stats --prune true
  placement: 4 servers for 15 requests (modes 5 10)
    node 0    load   5 -> mode W1 (137.5 W)  new
    node 3    load   5 -> mode W1 (137.5 W)  reused (was mode 2)
    node 6    load   2 -> mode W1 (137.5 W)  new
    node 7    load   3 -> mode W1 (137.5 W)  new
  deleted pre-existing servers: 4
  power (Eq. 3): 550.000
  cost (Eq. 4): 4.311
  --- solver statistics ---
  dp_power.capacity_rejected 8
  dp_power.cells_created     101
  dp_power.dominance_pruned  17
  dp_power.merge_products    94
  dp_power.peak_table_size   24
  dp_power.merge_products_per_node count 7  p50 11  p90 22  p99 22

The greedy power baseline and the local-search heuristic on the same instance:

  $ replica_cli solve --algo gr-power --nodes 8 --pre 2 --seed 7 -w 10 --bound 6
  placement: 4 servers for 15 requests (modes 5 10)
    node 0    load   5 -> mode W1 (137.5 W)  new
    node 3    load   5 -> mode W1 (137.5 W)  reused (was mode 2)
    node 6    load   2 -> mode W1 (137.5 W)  new
    node 7    load   3 -> mode W1 (137.5 W)  new
  deleted pre-existing servers: 4
  power (Eq. 3): 550.000
  cost (Eq. 4): 4.311

  $ replica_cli solve --algo heuristic --nodes 8 --pre 2 --seed 7 -w 10 --bound 6
  placement: 4 servers for 15 requests (modes 5 10)
    node 0    load   5 -> mode W1 (137.5 W)  new
    node 3    load   5 -> mode W1 (137.5 W)  reused (was mode 2)
    node 6    load   2 -> mode W1 (137.5 W)  new
    node 7    load   3 -> mode W1 (137.5 W)  new
  deleted pre-existing servers: 4
  power (Eq. 3): 550.000
  cost (Eq. 4): 4.311

Update-policy ablation at toy scale:

  $ replica_cli policies --trees 2 --nodes 10 --epochs 4 --seed 2 --csv
  policy,avg total cost,avg reconfigurations,avg invalid epochs
  systematic,15.25,4.00,0.00
  lazy,5.25,1.00,0.00
  periodic(4),8.38,2.00,0.00
  drift(0.20),5.25,1.00,0.00

Power-heuristics ablation at toy scale (--no-time blanks the wall-clock
column so the output is deterministic). Rows are registry entries under
their registry names, in registration order:

  $ replica_cli heuristics --trees 2 --nodes 10 --pre 2 --seed 2 --csv --no-time
  algorithm,solved,avg overhead %,worst overhead %,avg seconds
  dp-power,2,0.00,0.00,-
  gr-power,2,0.00,0.00,-
  heuristic,2,0.00,0.00,-
  multi-start,2,0.00,0.00,-
  anneal,2,0.00,0.00,-

Experiment 3 at toy scale, as CSV:

  $ replica_cli exp3 -q --trees 2 --nodes 10 --pre 2 --seed 2 --csv
  cost bound,DP 1/power,GR 1/power,DP feasible,GR feasible
  3.21,0.000231,0.000000,1,0
  3.44,0.000231,0.000231,1,1
  3.67,0.000231,0.000231,1,1
  3.89,0.000231,0.000231,1,1
  4.12,0.000231,0.000231,1,1
  4.35,0.000351,0.000231,1,1
  4.57,0.000702,0.000702,2,2
  4.80,0.000702,0.000702,2,2
  5.03,0.000702,0.000702,2,2
  5.26,0.000702,0.000702,2,2
  5.48,0.001078,0.000702,2,2
  5.71,0.001078,0.001078,2,2
  5.94,0.001078,0.001078,2,2
  6.17,0.001078,0.001078,2,2
  6.39,0.001078,0.001078,2,2
  6.62,0.001333,0.001333,2,2

Trace-driven pipeline at toy scale:

  $ replica_cli trace --nodes 12 --seed 6 --horizon 6 --window 2
  trace: 39 requests over 6.0 time units
  epoch  1: demand    4  changed  12  dirty  12   1 servers  reconfigured cost 1.50
  epoch  2: demand    8  changed   3  dirty   4   1 servers  stale 1
  epoch  3: demand   10  changed   2  dirty   3   1 servers  stale 2
  total: 1 reconfigurations, bill 1.50, 0 invalid epochs

The online engine over a flash-crowd trace; full and incremental
re-solving print identical timelines (only the work differs):

  $ replica_cli engine --nodes 12 --seed 6 --horizon 6 --window 2 \
  >   --workload flash --policy periodic:2 --solver incremental --no-time
  trace: 57 requests over 5.9 time units
  epoch  1: demand   12  changed  12  dirty  12   2 servers  reconfigured cost 3.00
  epoch  2: demand   12  changed   2  dirty   4   2 servers  reconfigured cost 2.00
  epoch  3: demand    7  changed   3  dirty   4   2 servers  stale 1
  total: 2 reconfigurations, bill 5.00, 0 invalid epochs

  $ replica_cli engine --nodes 12 --seed 6 --horizon 6 --window 2 \
  >   --workload flash --policy periodic:2 --solver full --no-time
  trace: 57 requests over 5.9 time units
  epoch  1: demand   12  changed  12  dirty  12   2 servers  reconfigured cost 3.00
  epoch  2: demand   12  changed   2  dirty   4   2 servers  reconfigured cost 2.00
  epoch  3: demand    7  changed   3  dirty   4   2 servers  stale 1
  total: 2 reconfigurations, bill 5.00, 0 invalid epochs

Power objective: each epoch also reports the Eq. 3 power in force:

  $ replica_cli engine --nodes 12 --seed 6 --horizon 6 --window 2 \
  >   --power --policy systematic --no-time
  trace: 39 requests over 6.0 time units
  epoch  1: demand    4  changed  12  dirty  12   1 servers  reconfigured cost 1.10  power 137.5
  epoch  2: demand    8  changed   3  dirty   4   2 servers  reconfigured cost 2.10  power 275.0
  epoch  3: demand   10  changed   2  dirty   3   2 servers  reconfigured cost 2.00  power 275.0
  total: 3 reconfigurations, bill 5.20, 0 invalid epochs

Mid-trace constraint tightening: --qos Q@E applies the bound from
epoch E on (the whole run when @E is omitted), re-solving under dp-qos
by default:

  $ replica_cli engine --nodes 12 --seed 6 --horizon 6 --window 2 \
  >   --workload flash --policy systematic --qos 2@2 --no-time
  trace: 57 requests over 5.9 time units
  epoch  1: demand   12  changed  12  dirty  12   2 servers  reconfigured cost 3.00
  epoch  2: demand   12  changed   2  dirty   4   2 servers  reconfigured cost 2.00
  epoch  3: demand    7  changed   3  dirty   4   1 servers  reconfigured cost 1.25
  total: 3 reconfigurations, bill 6.25, 0 invalid epochs

An explicitly chosen solver that cannot enforce the epoch's
constraints fails fast at the epoch that turns them on, not at the end
of the run:

  $ replica_cli engine --nodes 12 --seed 6 --horizon 6 --window 2 \
  >   --workload flash --policy systematic --qos 2@2 --algo dp-withpre --no-time
  replica_cli: Engine: dp-withpre cannot enforce the epoch's QoS bounds (use a qos-capable solver, e.g. dp-qos)
  trace: 57 requests over 5.9 time units
  [2]

A forest run: several sharded trees over one physical pool, stepped in
lock-step on a merged epoch grid. Placements are identical at any
--domains value:

  $ replica_cli forest --trees 2 --objects 4 --nodes 8 --seed 5 \
  >   --horizon 4 --window 1 --workload poisson --no-time
  forest: 2 trees, 4 shards, 16 servers, 226 requests over 4.0 time units
  epoch  1: demand    54  reconf   4  servers    9  peak  29
  epoch  2: demand    58  reconf   1  servers    9  peak  35
  epoch  3: demand    58  reconf   0  servers    9  peak  32
  epoch  4: demand    56  reconf   1  servers   10  peak  23
  total: 6 shard reconfigurations, bill 21.75, repair added 0, 0 invalid epochs

  $ replica_cli forest --trees 2 --objects 4 --nodes 8 --seed 5 \
  >   --horizon 4 --window 1 --workload poisson --no-time -j 3
  forest: 2 trees, 4 shards, 16 servers, 226 requests over 4.0 time units
  epoch  1: demand    54  reconf   4  servers    9  peak  29
  epoch  2: demand    58  reconf   1  servers    9  peak  35
  epoch  3: demand    58  reconf   0  servers    9  peak  32
  epoch  4: demand    56  reconf   1  servers   10  peak  23
  total: 6 shard reconfigurations, bill 21.75, repair added 0, 0 invalid epochs

With --coupling, epochs whose shared machines overload are repaired by
push-down (the extra replicas show up in the summary; the repaired
placement carries into the following epochs):

  $ replica_cli forest --trees 2 --objects 6 --nodes 8 --servers 9 \
  >   --seed 5 --horizon 4 --window 1 --workload poisson --coupling \
  >   --no-time -w 18
  forest: 2 trees, 6 shards, 9 servers, 319 requests over 4.0 time units
  epoch  1: demand    77  reconf   6  servers   25  peak  15  overloads 1 repaired +18/5
  epoch  2: demand    87  reconf   0  servers   25  peak  17
  epoch  3: demand    75  reconf   0  servers   25  peak  16
  epoch  4: demand    80  reconf   0  servers   25  peak  16
  total: 6 shard reconfigurations, bill 10.50, repair added 18, 0 invalid epochs

A coupled run demands a solver the push-down argument is sound for;
others are rejected up front:

  $ replica_cli forest --trees 2 --objects 4 --nodes 8 --seed 5 \
  >   --coupling --algo upwards --no-time
  replica_cli: Forest_engine: upwards cannot participate in cross-object capacity coupling (its placements are not closest-policy cost placements the push-down repair is sound for; see --list-algos)
  [2]

The forest timeline exports the same machine-readable envelope as the
other artifacts:

  $ replica_cli forest --trees 2 --objects 4 --nodes 8 --seed 5 \
  >   --horizon 4 --window 1 --workload poisson --no-time \
  >   --json forest_run.json > /dev/null
  $ python3 - <<'PYEOF'
  > import json
  > d = json.load(open("forest_run.json"))
  > print(d["bench"], d["config"]["trees"], d["config"]["coupling"])
  > print("epochs:", d["summary"]["epochs"],
  >       "reconfigurations:", d["summary"]["reconfigurations"])
  > PYEOF
  forest_timeline 2 False
  epochs: 4 reconfigurations: 6

Span tracing: --trace records the run as Chrome trace-event JSON and
obs-validate checks it structurally without external tooling. Event
counts are workload-deterministic (one "X" event per completed span):

  $ replica_cli solve --algo dp-withpre --nodes 6 --pre 2 --seed 5 -w 8 \
  >   --trace solve_trace.json
  placement: 0 servers for 0 requests (W = 8)
  deleted pre-existing servers: 1 5
  reused 0 of 2 pre-existing servers
  cost (Eq. 2): 0.020
  $ replica_cli obs-validate --trace solve_trace.json
  trace solve_trace.json: valid chrome trace, 2 events

The engine exports both a trace and a Prometheus metrics snapshot, and
the traced timeline is identical to the untraced one above. The trace
carries one "C" heap-counter event per epoch (gc.heap) on top of the
61 span/metadata events:

  $ replica_cli engine --nodes 12 --seed 6 --horizon 6 --window 2 \
  >   --workload flash --policy periodic:2 --no-time \
  >   --trace engine_trace.json --metrics engine_metrics.prom
  trace: 57 requests over 5.9 time units
  epoch  1: demand   12  changed  12  dirty  12   2 servers  reconfigured cost 3.00
  epoch  2: demand   12  changed   2  dirty   4   2 servers  reconfigured cost 2.00
  epoch  3: demand    7  changed   3  dirty   4   2 servers  stale 1
  total: 2 reconfigurations, bill 5.00, 0 invalid epochs
  $ replica_cli obs-validate --trace engine_trace.json --metrics engine_metrics.prom
  trace engine_trace.json: valid chrome trace, 20 events
  metrics engine_metrics.prom: valid prometheus exposition

obs-validate rejects malformed artifacts and fails loudly when given
nothing to check:

  $ echo '{}' > bogus.json
  $ replica_cli obs-validate --trace bogus.json
  trace bogus.json: INVALID: missing "traceEvents"
  [1]
  $ replica_cli obs-validate
  obs-validate: nothing to validate (pass --trace and/or --metrics)
  [2]

Profile analysis of the committed engine-epoch fixture trace. The
fixture records spans_dropped = 2, so every profile invocation warns
(on stderr) that the numbers undercount. Default output is the
self-time hotspot table:

  $ replica_cli profile --trace epoch_trace.json
  profile: warning: 2 spans were dropped while recording epoch_trace.json — self times and counts undercount the truncated subtrees
  name                 calls     total(us)      self(us)   self%
  dp_withpre.merge         1       600.000       600.000   50.0%
  dp_withpre.node          1       300.000       300.000   25.0%
  engine.apply             1       120.000       120.000   10.0%
  dp_withpre.solve         1       950.000        50.000    4.2%
  engine.epoch             1      1200.000        50.000    4.2%
  engine.demand_diff       1        40.000        40.000    3.3%
  engine.solve             1       980.000        30.000    2.5%
  engine.policy            1        10.000        10.000    0.8%

--folded emits Brendan Gregg collapsed stacks (frame;frame;frame
self_ns), loadable by inferno/speedscope/flamegraph.pl; the weights
partition the root's wall time exactly:

  $ replica_cli profile --trace epoch_trace.json --folded
  profile: warning: 2 spans were dropped while recording epoch_trace.json — self times and counts undercount the truncated subtrees
  engine.epoch 50000
  engine.epoch;engine.apply 120000
  engine.epoch;engine.demand_diff 40000
  engine.epoch;engine.policy 10000
  engine.epoch;engine.solve 30000
  engine.epoch;engine.solve;dp_withpre.solve 50000
  engine.epoch;engine.solve;dp_withpre.solve;dp_withpre.merge 600000
  engine.epoch;engine.solve;dp_withpre.solve;dp_withpre.node 300000

--critical-path descends the widest child at every level; the
contributions telescope to the epoch's full duration:

  $ replica_cli profile --trace epoch_trace.json --critical-path
  profile: warning: 2 spans were dropped while recording epoch_trace.json — self times and counts undercount the truncated subtrees
  critical path: 1200.000 us across 4 spans
    engine.epoch                1200.000 us  self      220.000 us   18.3%
      engine.solve               980.000 us  self       30.000 us    2.5%
        dp_withpre.solve         950.000 us  self      350.000 us   29.2%
          dp_withpre.merge       600.000 us  self      600.000 us   50.0%

The fixture also carries per-span allocation columns (minor_w/major_w
args, recorded when the run traced with alloc capture on). --alloc
switches every view to the allocation axis: the hotspot table ranks by
self minor words, which partition the total allocation exactly as self
times partition wall time:

  $ replica_cli profile --trace epoch_trace.json --alloc
  profile: warning: 2 spans were dropped while recording epoch_trace.json — self times and counts undercount the truncated subtrees
  name                 calls      minor(w)       self(w)   self%      major(w)
  dp_withpre.merge         1         52000         52000   52.0%          1500
  dp_withpre.node          1         20000         20000   20.0%           500
  engine.demand_diff       1          8000          8000    8.0%             0
  dp_withpre.solve         1         78000          6000    6.0%          2000
  engine.apply             1          6000          6000    6.0%             0
  engine.epoch             1        100000          5500    5.5%          2000
  engine.solve             1         80000          2000    2.0%          2000
  engine.policy            1           500           500    0.5%             0

--alloc --folded emits the same collapsed-stack format weighted by
self minor words instead of nanoseconds, so the output feeds the same
flamegraph tooling:

  $ replica_cli profile --trace epoch_trace.json --alloc --folded
  profile: warning: 2 spans were dropped while recording epoch_trace.json — self times and counts undercount the truncated subtrees
  engine.epoch 5500
  engine.epoch;engine.apply 6000
  engine.epoch;engine.demand_diff 8000
  engine.epoch;engine.policy 500
  engine.epoch;engine.solve 2000
  engine.epoch;engine.solve;dp_withpre.solve 6000
  engine.epoch;engine.solve;dp_withpre.solve;dp_withpre.merge 52000
  engine.epoch;engine.solve;dp_withpre.solve;dp_withpre.node 20000

--alloc --critical-path annotates the time-critical path with each
phase's allocation; the self contributions telescope to the root's
minor words:

  $ replica_cli profile --trace epoch_trace.json --alloc --critical-path
  profile: warning: 2 spans were dropped while recording epoch_trace.json — self times and counts undercount the truncated subtrees
  critical path: 1200.000 us, 100000 minor words across 4 spans
    engine.epoch                1200.000 us  self      220.000 us   18.3%      100000w  self      20000w   20.0%
      engine.solve               980.000 us  self       30.000 us    2.5%       80000w  self       2000w    2.0%
        dp_withpre.solve         950.000 us  self      350.000 us   29.2%       78000w  self      26000w   26.0%
          dp_withpre.merge       600.000 us  self      600.000 us   50.0%       52000w  self      52000w   52.0%

--top validates its argument:

  $ replica_cli profile --trace epoch_trace.json --top 0
  replica_cli: profile: --top must be positive (got 0)
  [2]

  $ replica_cli profile --trace bogus.json
  profile: bogus.json: missing "traceEvents"
  [2]

bench-diff gates benchmark artifacts: deterministic count metrics
hard-fail, wall-clock metrics only warn. An identical run passes:

  $ cat > bench_base.json <<'EOF'
  > {
  >   "schema_version": 1,
  >   "bench": "dp_power",
  >   "merge_products_ratio": 1.36,
  >   "peak_major_words": 1500000,
  >   "unpruned": { "power": 550.0, "cost": 4.311,
  >                 "dp_power.merge_products": 128,
  >                 "dp_power.tables.seconds": 0.010,
  >                 "allocated_bytes_per_solve": 8388608.0 },
  >   "pruned": { "power": 550.0, "cost": 4.311, "servers": 4,
  >               "dp_power.merge_products": 94,
  >               "dp_power.cells_created": 101,
  >               "dp_power.peak_table_size": 24,
  >               "dp_power.tables.seconds": 0.008,
  >               "allocated_bytes_per_solve": 5242880.0 }
  > }
  > EOF
  $ replica_cli bench-diff bench_base.json bench_base.json
  bench dp_power: 15 metric(s) compared
    metric                                  baseline       current     delta  status
    unpruned.power                               550           550     +0.0%  ok
    unpruned.cost                              4.311         4.311     +0.0%  ok
    pruned.power                                 550           550     +0.0%  ok
    pruned.cost                                4.311         4.311     +0.0%  ok
    pruned.servers                                 4             4     +0.0%  ok
    unpruned.dp_power.merge_products             128           128     +0.0%  ok
    pruned.dp_power.merge_products                94            94     +0.0%  ok
    pruned.dp_power.cells_created                101           101     +0.0%  ok
    pruned.dp_power.peak_table_size               24            24     +0.0%  ok
    merge_products_ratio                        1.36          1.36     +0.0%  ok
    unpruned.dp_power.tables.seconds            0.01          0.01     +0.0%  ok
    pruned.dp_power.tables.seconds             0.008         0.008     +0.0%  ok
    unpruned.allocated_bytes_per_solve       8388608       8388608     +0.0%  ok
    pruned.allocated_bytes_per_solve         5242880       5242880     +0.0%  ok
    peak_major_words                         1500000       1500000     +0.0%  ok
  missing from one side: unpruned.dp_power.cells_created, merge_minor_words
  verdict: 0 hard regression(s), 0 warning(s)

A run with 20% more merge products (a deterministic counter) and a
slower table build (wall clock) exits nonzero for the former and only
warns about the latter:

  $ sed -e 's/"dp_power.merge_products": 94/"dp_power.merge_products": 113/' \
  >     -e 's/"dp_power.tables.seconds": 0.008/"dp_power.tables.seconds": 0.020/' \
  >     bench_base.json > bench_regressed.json
  $ replica_cli bench-diff bench_base.json bench_regressed.json
  bench dp_power: 15 metric(s) compared
    metric                                  baseline       current     delta  status
    unpruned.power                               550           550     +0.0%  ok
    unpruned.cost                              4.311         4.311     +0.0%  ok
    pruned.power                                 550           550     +0.0%  ok
    pruned.cost                                4.311         4.311     +0.0%  ok
    pruned.servers                                 4             4     +0.0%  ok
    unpruned.dp_power.merge_products             128           128     +0.0%  ok
    pruned.dp_power.merge_products                94           113    +20.2%  REGRESSED
    pruned.dp_power.cells_created                101           101     +0.0%  ok
    pruned.dp_power.peak_table_size               24            24     +0.0%  ok
    merge_products_ratio                        1.36          1.36     +0.0%  ok
    unpruned.dp_power.tables.seconds            0.01          0.01     +0.0%  ok
    pruned.dp_power.tables.seconds             0.008          0.02   +150.0%  regressed (warn)
    unpruned.allocated_bytes_per_solve       8388608       8388608     +0.0%  ok
    pruned.allocated_bytes_per_solve         5242880       5242880     +0.0%  ok
    peak_major_words                         1500000       1500000     +0.0%  ok
  warning: pruned.dp_power.tables.seconds regressed (0.008 -> 0.02); timing metric, not gating
  missing from one side: unpruned.dp_power.cells_created, merge_minor_words
  verdict: 1 hard regression(s), 1 warning(s)
  [1]

Artifacts of different kinds cannot be compared:

  $ replica_cli bench-diff solve_trace.json bench_base.json
  bench-diff: not a bench envelope (missing schema_version or bench kind)
  [2]

Live telemetry: --timeseries samples the metrics registry once per
epoch into a JSON artifact, --openmetrics exports the same window as
timestamped gauge families, and --flight-record keeps a bounded span
ring that is dumped as a Chrome trace when an epoch's latency is
anomalous (--anomaly-k 0 dumps every epoch — the deterministic mode).
The timeline itself is identical to the untelemetered run above:

  $ replica_cli engine --nodes 12 --seed 6 --horizon 6 --window 2 \
  >   --workload flash --policy periodic:2 --no-time \
  >   --timeseries ts.json --openmetrics ts.om \
  >   --flight-record fr.json --anomaly-k 0 2>fr.err
  trace: 57 requests over 5.9 time units
  epoch  1: demand   12  changed  12  dirty  12   2 servers  reconfigured cost 3.00
  epoch  2: demand   12  changed   2  dirty   4   2 servers  reconfigured cost 2.00
  epoch  3: demand    7  changed   3  dirty   4   2 servers  stale 1
  total: 2 reconfigurations, bill 5.00, 0 invalid epochs
  $ cat fr.err
  flight-recorder: 3 dump(s), last at epoch 3 -> fr.json

The timeseries artifact is one point per epoch; each point maps
flattened series keys (labels included) to scalars — counters as
per-epoch deltas, gauges raw, histograms as count/sum deltas plus
p50/p99:

  $ python3 - <<'PYEOF'
  > import json
  > d = json.load(open("ts.json"))
  > print(d["bench"], d["stride"], len(d["points"]))
  > print(sorted(d["points"][0].keys()))
  > print(len([k for k in d["points"][0]["metrics"] if k.startswith("engine.")]))
  > print(all(any(k.startswith(p) for k in d["points"][0]["metrics"])
  >           for p in ("gc.minor_words", "gc.heap_words")))
  > PYEOF
  timeseries 1 3
  ['epoch', 'metrics']
  11
  True

Both exports and the flight-recorder dump are valid artifacts; the
dump feeds straight into the profile analyser:

  $ replica_cli obs-validate --metrics ts.om
  metrics ts.om: valid prometheus exposition
  $ replica_cli obs-validate --trace fr.json
  trace fr.json: valid chrome trace, 17 events
  $ replica_cli profile --trace fr.json | head -1
  name                 calls     total(us)      self(us)   self%

The forest exposes per-shard labeled series through the same
registry; the scrape passes the same validator:

  $ replica_cli forest --trees 2 --objects 4 --nodes 8 --seed 5 \
  >   --horizon 4 --window 1 --workload poisson --no-time \
  >   --metrics forest_metrics.prom > /dev/null
  $ replica_cli obs-validate --metrics forest_metrics.prom
  metrics forest_metrics.prom: valid prometheus exposition
  $ grep 'forest_shard_demand{' forest_metrics.prom
  replicaml_forest_shard_demand{shard="0"} 13
  replicaml_forest_shard_demand{shard="1"} 15
  replicaml_forest_shard_demand{shard="2"} 7
  replicaml_forest_shard_demand{shard="3"} 21

top --once runs a workload and renders one frame of the live view
from the same timeseries (rates and latencies are wall-clock, so only
the deterministic header lines are pinned here):

  $ replica_cli top --once --nodes 12 --seed 6 --horizon 6 --window 2 | head -2
  replica top - engine  solver=dp-withpre  policy=lazy
  epochs served        3/3

  $ replica_cli top --once --forest --trees 2 --objects 4 --nodes 8 \
  >   --seed 5 --horizon 4 --window 1 | head -2
  replica top - forest  solver=dp-withpre  policy=lazy
  epochs served        4/4

bench-history trend fits a per-metric slope over the recent runs of
one bench kind in the JSON-lines history:

  $ cat > hist.jsonl <<'EOF'
  > {"schema_version": 1, "bench": "obs", "guard_ns_per_check": 5.0, "tracing_on_overhead_percent": 3.0, "spans_per_solve": 200, "allocated_bytes_per_solve": 6000000.0}
  > {"schema_version": 1, "bench": "obs", "guard_ns_per_check": 4.0, "tracing_on_overhead_percent": 3.2, "spans_per_solve": 200, "allocated_bytes_per_solve": 5500000.0}
  > {"schema_version": 1, "bench": "obs", "guard_ns_per_check": 3.0, "tracing_on_overhead_percent": 2.9, "spans_per_solve": 200, "allocated_bytes_per_solve": 5000000.0}
  > EOF
  $ replica_cli bench-history trend --file hist.jsonl --kind obs
  bench obs: trend over last 3 run(s)
    metric                              first          last     slope/run  trend
    spans_per_solve                       200           200            +0  stable
    tracing_on_overhead_percent             3           2.9         -0.05  improving
    guard_ns_per_check                      5             3            -1  improving
    allocated_bytes_per_solve         6000000       5000000        -5e+05  improving

  $ replica_cli bench-history trend --file missing.jsonl --kind obs
  replica_cli: history file missing.jsonl does not exist (run `make bench' first)
  [2]
