(* The online reconfiguration engine.

   The load-bearing suite is differential: over 100+ seeded trace-driven
   runs, the incremental engine (subtree tables cached under demand
   fingerprints, only dirty paths recomputed) must pick bit-identical
   placements to the full re-solve it replaces — in cost mode
   (Dp_withpre) and in power mode (Dp_power). *)

open Replica_tree
open Replica_core
open Replica_engine
module Json = Replica_obs.Json
open Helpers

let policies =
  [|
    Update_policy.Systematic;
    Update_policy.Lazy;
    Update_policy.Periodic 2;
    Update_policy.Drift 0.15;
  |]

(* Traces come from the shared [Helpers.workload_trace] generator. *)

(* One seeded run under both solvers; every epoch's placement (and the
   decision/billing around it) must agree. *)
let differential_run ~seed ~objective_of ~w =
  let make rng = small_tree rng ~nodes:(6 + (seed mod 7)) ~max_requests:4 in
  let tree = make (Rng.create seed) in
  let rng = Rng.create (seed * 31) in
  let trace = workload_trace rng tree ~kind:(seed mod 3) ~horizon:8. in
  let policy = policies.(seed mod Array.length policies) in
  let run solver =
    let cfg = Engine.config ~policy ~solver ~w (objective_of ()) in
    Engine.run_trace cfg tree trace ~window:1.
  in
  let full = run Engine.Full in
  let incremental = run Engine.Incremental in
  check ci
    (Printf.sprintf "seed %d: same epoch count" seed)
    (List.length full.Timeline.entries)
    (List.length incremental.Timeline.entries);
  List.iter2
    (fun (a : Timeline.entry) (b : Timeline.entry) ->
      let label fmt = Printf.sprintf fmt seed a.Timeline.epoch in
      check cb
        (label "seed %d epoch %d: identical placement")
        true
        (Solution.equal a.Timeline.servers b.Timeline.servers);
      check cb
        (label "seed %d epoch %d: same decision")
        a.Timeline.reconfigured b.Timeline.reconfigured;
      check cf
        (label "seed %d epoch %d: same bill")
        a.Timeline.step_cost b.Timeline.step_cost;
      check cb (label "seed %d epoch %d: same validity") a.Timeline.valid
        b.Timeline.valid)
    full.Timeline.entries incremental.Timeline.entries

let test_differential_cost () =
  (* >= 100 seeded runs (the PR's acceptance bar) across all three
     workloads and all four update policies. *)
  let cost = Cost.basic ~create:0.5 ~delete:0.25 () in
  for seed = 1 to 110 do
    differential_run ~seed ~w:10
      ~objective_of:(fun () -> Engine.Min_cost cost)
  done

let test_differential_power () =
  let objective () =
    Engine.Min_power
      {
        modes = modes_2;
        power = power_exp3;
        cost = cost_cheap;
        bound = infinity;
      }
  in
  for seed = 1 to 20 do
    differential_run ~seed ~w:10 ~objective_of:objective
  done

(* --- unit behaviour --- *)

let drifting_demands tree seed epochs =
  let rng = Rng.create seed in
  List.init epochs (fun _ ->
      Tree.with_clients tree (fun j ->
          List.filter_map
            (fun r ->
              if Rng.bernoulli rng 0.2 then None
              else Some (min 4 (max 1 (r + Rng.int_in_range rng ~min:(-1) ~max:1))))
            (Tree.clients tree j)))

let test_create_validation () =
  let cost = Cost.basic ~create:0.5 ~delete:0.25 () in
  Alcotest.check_raises "w must be positive"
    (Invalid_argument "Engine: w must be positive") (fun () ->
      ignore (Engine.create (Engine.config ~w:0 (Engine.Min_cost cost))));
  Alcotest.check_raises "ladder mismatch"
    (Invalid_argument "Engine: w must equal the mode ladder's maximal capacity")
    (fun () ->
      ignore
        (Engine.create
           (Engine.config ~w:7
              (Engine.Min_power
                 {
                   modes = modes_2;
                   power = power_exp3;
                   cost = cost_cheap;
                   bound = infinity;
                 }))))

let test_systematic_reconfigures_every_epoch () =
  let tree = small_tree (Rng.create 3) ~nodes:8 ~max_requests:3 in
  let demands = drifting_demands tree 11 6 in
  let cfg =
    Engine.config ~policy:Update_policy.Systematic ~w:10
      (Engine.Min_cost (Cost.basic ~create:0.5 ~delete:0.25 ()))
  in
  let t = Engine.run cfg demands in
  check ci "reconfigured every epoch" 6 t.Timeline.reconfigurations;
  check ci "no invalid epochs" 0 t.Timeline.invalid_epochs;
  List.iter
    (fun (e : Timeline.entry) ->
      check ci
        (Printf.sprintf "epoch %d staleness" e.Timeline.epoch)
        0 e.Timeline.staleness)
    t.Timeline.entries

let test_incremental_memo_reuse () =
  (* Alternating between two demand phases: the memo must actually hit
     once both phases have been seen. *)
  let tree = small_tree (Rng.create 5) ~nodes:12 ~max_requests:3 in
  let other =
    Tree.with_clients tree (fun j ->
        match Tree.clients tree j with
        | c :: rest when j mod 2 = 0 -> (c + 1) :: rest
        | cs -> cs)
  in
  let demands =
    List.init 8 (fun i -> if i mod 2 = 0 then tree else other)
  in
  let cfg =
    Engine.config ~policy:Update_policy.Systematic ~w:10
      (Engine.Min_cost (Cost.basic ~create:0.5 ~delete:0.25 ()))
  in
  let t = Engine.create cfg in
  let entries = List.map (Engine.step t) demands in
  check cb "memo holds tables" true (Engine.memo_tables t > 0);
  let hits =
    List.fold_left
      (fun acc (e : Timeline.entry) ->
        acc
        + (try List.assoc "dp_withpre.memo_hits" e.Timeline.counters
           with Not_found -> 0))
      0 entries
  in
  check cb "memo hits on warm epochs" true (hits > 0)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_timeline_json_shape () =
  let tree = small_tree (Rng.create 9) ~nodes:6 ~max_requests:3 in
  let cfg =
    Engine.config ~w:10
      (Engine.Min_cost (Cost.basic ~create:0.5 ~delete:0.25 ()))
  in
  let t = Engine.run cfg [ tree; tree ] in
  let s = Timeline.to_json_string ~config:[ ("seed", Json.Int 9) ] t in
  List.iter
    (fun needle ->
      check cb (Printf.sprintf "json mentions %s" needle) true (contains s needle))
    [
      "\"schema_version\": 1";
      "\"bench\": \"engine_timeline\"";
      "\"seed\": 9";
      "\"summary\"";
      "\"epochs\"";
      "\"reconfigured\"";
    ]

let () =
  Alcotest.run "engine"
    [
      ( "differential",
        [
          Alcotest.test_case "cost mode: 110 trace runs" `Slow
            test_differential_cost;
          Alcotest.test_case "power mode: 20 trace runs" `Slow
            test_differential_power;
        ] );
      ( "engine",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "systematic policy" `Quick
            test_systematic_reconfigures_every_epoch;
          Alcotest.test_case "memo reuse" `Quick test_incremental_memo_reuse;
          Alcotest.test_case "timeline json" `Quick test_timeline_json_shape;
        ] );
    ]
