(* Tests for the experiment harness: statistics, tables, workloads, and
   small end-to-end runs of the three experiments. *)

open Replica_experiments
open Helpers

(* --- Stats --- *)

let test_mean_stddev () =
  check cf "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  check cf "mean empty" 0. (Stats.mean []);
  check cf "stddev" (sqrt 1.25) (Stats.stddev [ 1.; 2.; 3.; 4. ]);
  check cf "stddev singleton" 0. (Stats.stddev [ 5. ]);
  check cf "mean_int" 2. (Stats.mean_int [ 1; 2; 3 ])

let test_extrema_median () =
  check cf "min" 1. (Stats.minimum [ 3.; 1.; 2. ]);
  check cf "max" 3. (Stats.maximum [ 3.; 1.; 2. ]);
  check cf "median odd" 2. (Stats.median [ 3.; 1.; 2. ]);
  check cf "median even (lower)" 2. (Stats.median [ 4.; 1.; 2.; 3. ]);
  check cf "quantile 0" 1. (Stats.quantile 0. [ 3.; 1.; 2. ]);
  check cf "quantile 1" 3. (Stats.quantile 1. [ 3.; 1.; 2. ]);
  Alcotest.check_raises "bad quantile"
    (Invalid_argument "Stats.quantile: q out of [0,1]") (fun () ->
      ignore (Stats.quantile 1.5 [ 1. ]))

let test_histogram () =
  check
    (Alcotest.list (Alcotest.pair ci ci))
    "histogram"
    [ (-1, 1); (0, 2); (3, 3) ]
    (Stats.histogram [ 0; 3; -1; 3; 0; 3 ]);
  check (Alcotest.list (Alcotest.pair ci ci)) "empty" [] (Stats.histogram [])

let test_confidence () =
  check cf "singleton" 0. (Stats.confidence95 [ 1. ]);
  let ci95 = Stats.confidence95 [ 1.; 2.; 3.; 4. ] in
  check cb "positive" true (ci95 > 0.)

(* --- Table --- *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let test_table_render () =
  let t = Table.make ~header:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "10" ];
  let rendered = Table.render t in
  check cb "contains header" true
    (String.length rendered > 0 && contains rendered "bb");
  check cb "pads short rows" true (contains rendered "10");
  (* Rows render in insertion order. *)
  let index_of needle =
    let n = String.length needle in
    let rec go i =
      if i + n > String.length rendered then -1
      else if String.sub rendered i n = needle then i
      else go (i + 1)
    in
    go 0
  in
  check cb "order" true
    (index_of "|  1 " >= 0 && index_of "|  1 " < index_of "| 10 ")

let test_table_too_long () =
  let t = Table.make ~header:[ "a" ] in
  Alcotest.check_raises "too long" (Invalid_argument "Table.add_row: row too long")
    (fun () -> Table.add_row t [ "1"; "2" ])

let test_table_csv () =
  let t = Table.make ~header:[ "x"; "y" ] in
  Table.add_row t [ "1"; "a,b" ];
  Table.add_float_row t ~decimals:1 [ 2.5; 3.25 ];
  check Alcotest.string "csv" "x,y\n1,\"a,b\"\n2.5,3.2\n" (Table.to_csv t)

let test_fmt_float () =
  check Alcotest.string "nan" "-" (Table.fmt_float Float.nan);
  check Alcotest.string "inf" "inf" (Table.fmt_float infinity);
  check Alcotest.string "value" "1.500" (Table.fmt_float 1.5);
  check Alcotest.string "decimals" "1.5" (Table.fmt_float ~decimals:1 1.5)

(* --- Par --- *)

let test_par_map_equivalence () =
  let l = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  List.iter
    (fun domains ->
      check (Alcotest.list ci)
        (Printf.sprintf "map @ %d domains" domains)
        (List.map f l)
        (Par.map ~domains f l))
    [ 1; 2; 4 ];
  check (Alcotest.list ci) "default domains" (List.map f l) (Par.map f l);
  check (Alcotest.list ci) "empty" [] (Par.map ~domains:4 f []);
  check (Alcotest.list ci) "singleton" [ 2 ] (Par.map ~domains:4 f [ 1 ])

let test_par_map2 () =
  let a = [ 1; 2; 3 ] and b = [ 10; 20; 30 ] in
  check (Alcotest.list ci) "map2" [ 11; 22; 33 ] (Par.map2 ~domains:2 ( + ) a b);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Par.map2: length mismatch") (fun () ->
      ignore (Par.map2 ( + ) [ 1 ] [ 1; 2 ]))

let test_par_exception_propagates () =
  let f x = if x = 37 then failwith "boom" else x in
  (match Par.map ~domains:3 f (List.init 100 Fun.id) with
  | exception Failure msg -> check Alcotest.string "message" "boom" msg
  | _ -> Alcotest.fail "expected the worker exception to propagate");
  (* Sequential path too. *)
  match Par.map ~domains:1 f [ 37 ] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure"

(* --- Workload --- *)

let test_workload_profiles () =
  let p = Workload.profile Workload.Fat ~nodes:30 ~max_requests:5 in
  check ci "nodes" 30 p.Replica_tree.Generator.nodes;
  check ci "max requests" 5 p.Replica_tree.Generator.max_requests;
  check ci "fat children" 9 p.Replica_tree.Generator.max_children;
  let h = Workload.profile Workload.High ~nodes:30 ~max_requests:6 in
  check ci "high children" 4 h.Replica_tree.Generator.max_children;
  check Alcotest.string "names" "fat" (Workload.shape_to_string Workload.Fat)

let test_workload_draws () =
  let rng = Replica_tree.Rng.create 5 in
  let cc = { (Workload.default_cost_config ()) with Workload.cc_nodes = 25 } in
  let t = Workload.draw_cost_tree rng cc in
  check ci "cost tree size" 25 (Replica_tree.Tree.size t);
  check ci "no pre-existing" 0 (Replica_tree.Tree.num_pre_existing t);
  let pc =
    { (Workload.default_power_config ()) with Workload.pc_nodes = 25; pc_pre = 4 }
  in
  let t = Workload.draw_power_tree rng pc in
  check ci "power tree size" 25 (Replica_tree.Tree.size t);
  check ci "pre-existing" 4 (Replica_tree.Tree.num_pre_existing t);
  List.iter
    (fun j ->
      check (Alcotest.option ci) "initial mode 2" (Some 2)
        (Replica_tree.Tree.initial_mode t j))
    (Replica_tree.Tree.pre_existing t)

(* Tiny configs so the end-to-end runs stay fast. *)
let tiny_cost_config =
  {
    (Workload.default_cost_config ()) with
    Workload.cc_trees = 4;
    cc_nodes = 15;
    cc_seed = 11;
  }

let tiny_power_config =
  {
    (Workload.default_power_config ()) with
    Workload.pc_trees = 4;
    pc_nodes = 12;
    pc_pre = 2;
    pc_seed = 11;
    pc_bounds = 6;
  }

let test_par_domain_count_invariance_on_experiments () =
  (* The flagship property: experiment results are bit-identical at any
     domain count. *)
  let a = Exp1.run ~domains:1 tiny_cost_config in
  let b = Exp1.run ~domains:4 tiny_cost_config in
  check cb "exp1 invariant" true (a = b);
  let a3 = Exp3.run ~domains:1 tiny_power_config in
  let b3 = Exp3.run ~domains:4 tiny_power_config in
  check cb "exp3 invariant" true (a3 = b3)

(* --- Exp1 --- *)

let test_exp1_structure () =
  let points = Exp1.run tiny_cost_config in
  check cb "has points" true (List.length points >= 2);
  let first = List.hd points and last = List.nth points (List.length points - 1) in
  check ci "starts at E=0" 0 first.Exp1.pre_existing;
  check ci "ends at E=N" 15 last.Exp1.pre_existing;
  (* At the extremes both algorithms coincide. *)
  check cf "E=0 no reuse (DP)" 0. first.Exp1.dp_reused;
  check cf "E=0 no reuse (GR)" 0. first.Exp1.gr_reused;
  check cf "E=N same reuse" last.Exp1.gr_reused last.Exp1.dp_reused;
  List.iter
    (fun p ->
      (* Both algorithms produce minimum-size solutions. *)
      check cf "same server count" p.Exp1.gr_servers p.Exp1.dp_servers;
      (* The DP never reuses fewer servers on average. *)
      check cb "dp >= gr" true (p.Exp1.dp_reused >= p.Exp1.gr_reused -. 1e-9))
    points

let test_exp1_deterministic () =
  let a = Exp1.run tiny_cost_config and b = Exp1.run tiny_cost_config in
  check cb "same results" true (a = b)

(* --- Exp2 --- *)

let test_exp2_structure () =
  let r = Exp2.run ~steps:6 tiny_cost_config in
  check ci "six step points" 6 (List.length r.Exp2.steps);
  (* Cumulative series are non-decreasing. *)
  let rec monotone extract = function
    | a :: (b :: _ as rest) ->
        check cb "non-decreasing" true (extract b >= extract a -. 1e-9);
        monotone extract rest
    | _ -> ()
  in
  monotone (fun p -> p.Exp2.dp_cumulative_reused) r.Exp2.steps;
  monotone (fun p -> p.Exp2.gr_cumulative_reused) r.Exp2.steps;
  (* Step 1 starts from no servers: nothing to reuse. *)
  let first = List.hd r.Exp2.steps in
  check cf "step 1 dp" 0. first.Exp2.dp_cumulative_reused;
  check cf "step 1 gr" 0. first.Exp2.gr_cumulative_reused;
  (* Histogram masses average to steps per tree: totals must equal 6. *)
  let mass = List.fold_left (fun acc (_, c) -> acc +. c) 0. r.Exp2.histogram in
  check cf "histogram mass" 6. mass;
  (* The paper: "they always reach the same total number of servers
     since they have the same requests" (given the ordering condition on
     the cost function). *)
  List.iter
    (fun p -> check cf "same mean server count" p.Exp2.gr_servers p.Exp2.dp_servers)
    r.Exp2.steps

(* --- Exp3 --- *)

let test_exp3_structure () =
  let r = Exp3.run tiny_power_config in
  check ci "bound count" 6 (List.length r.Exp3.points);
  List.iter
    (fun p ->
      (* DP is optimal: pointwise at least GR on inverse power and
         feasibility. *)
      check cb "dp inverse >= gr" true
        (p.Exp3.dp_inverse_power >= p.Exp3.gr_inverse_power -. 1e-12);
      check cb "dp feasible >= gr" true (p.Exp3.dp_feasible >= p.Exp3.gr_feasible))
    r.Exp3.points;
  (* Inverse power grows with the bound for each algorithm. *)
  let rec monotone extract = function
    | a :: (b :: _ as rest) ->
        check cb "non-decreasing in bound" true (extract b >= extract a -. 1e-12);
        monotone extract rest
    | _ -> ()
  in
  monotone (fun p -> p.Exp3.dp_inverse_power) r.Exp3.points;
  monotone (fun p -> p.Exp3.gr_inverse_power) r.Exp3.points;
  check cb "overconsumption non-negative" true
    (r.Exp3.gr_overconsumption_percent >= -1e-9);
  check cb "peak >= avg" true
    (r.Exp3.gr_peak_overconsumption_percent
    >= r.Exp3.gr_overconsumption_percent -. 1e-9)

(* --- Scaling --- *)

let test_scaling_smoke () =
  let ms =
    Scaling.measure_cost_algorithms ~sizes:[ 12; 18 ] ~shape:Workload.Fat ()
  in
  check ci "six registry cost solvers x two sizes" 12 (List.length ms);
  List.iter
    (fun m ->
      check cb "time non-negative" true (m.Scaling.seconds >= 0.);
      check cb "solved" true (m.Scaling.servers >= 0))
    ms;
  let power = Scaling.measure_power_dp ~sizes:[ 10 ] ~shape:Workload.Fat () in
  check ci "five registry power solvers x one size" 5 (List.length power)

let test_exp_policy_smoke () =
  let config =
    {
      (Exp_policy.default_config ()) with
      Exp_policy.trees = 3;
      nodes = 15;
      epochs = 5;
      seed = 3;
    }
  in
  let rows = Exp_policy.run config in
  check ci "one row per policy" 4 (List.length rows);
  let costs = List.map (fun r -> r.Exp_policy.avg_total_cost) rows in
  let systematic = List.hd costs in
  List.iter
    (fun c -> check cb "systematic pays the most" true (c <= systematic +. 1e-9))
    costs;
  List.iter
    (fun r ->
      check cb "reconfigurations within epochs" true
        (r.Exp_policy.avg_reconfigurations <= 5. +. 1e-9))
    rows

let test_exp_policy_drift_sweep () =
  let config =
    {
      (Exp_policy.default_config ()) with
      Exp_policy.trees = 3;
      nodes = 15;
      epochs = 6;
      seed = 3;
    }
  in
  let rows = Exp_policy.run_drift_sweep config [ 0.25; 4.0 ] in
  check ci "two rows" 2 (List.length rows);
  let calm = List.hd rows and wild = List.nth rows 1 in
  (* More volatility -> more lazy reconfigurations. *)
  check cb "volatility increases reconfigurations" true
    (wild.Exp_policy.lazy_reconfigurations
    >= calm.Exp_policy.lazy_reconfigurations -. 1e-9);
  List.iter
    (fun r ->
      check cb "lazy never beats systematic backwards" true
        (r.Exp_policy.lazy_cost <= r.Exp_policy.systematic_cost +. 1e-9))
    rows

let test_exp_heuristics_smoke () =
  let config =
    {
      (Exp_heuristics.default_config ()) with
      Exp_heuristics.trees = 3;
      nodes = 12;
      pre = 2;
      seed = 5;
    }
  in
  let rows = Exp_heuristics.run config in
  check ci "five solvers" 5 (List.length rows);
  let dp = List.hd rows in
  check Alcotest.string "dp first" "dp-power" dp.Exp_heuristics.algorithm;
  check cf "dp overhead zero" 0. dp.Exp_heuristics.avg_power_overhead_percent;
  List.iter
    (fun r ->
      check cb "overhead non-negative" true
        (r.Exp_heuristics.avg_power_overhead_percent >= -1e-6);
      check cb "worst >= avg" true
        (r.Exp_heuristics.worst_power_overhead_percent
        >= r.Exp_heuristics.avg_power_overhead_percent -. 1e-6))
    rows

let test_exp_update_smoke () =
  let config =
    {
      (Exp_update.default_config ()) with
      Exp_update.trees = 3;
      nodes = 15;
      pre = 5;
      seed = 5;
    }
  in
  let rows = Exp_update.run config in
  check ci "six registry cost solvers" 6 (List.length rows);
  let dp =
    List.find (fun r -> r.Exp_update.algorithm = "dp-withpre") rows
  in
  check cf "dp overhead zero" 0. dp.Exp_update.avg_cost_overhead_percent;
  List.iter
    (fun r ->
      check cb "overhead non-negative" true
        (r.Exp_update.avg_cost_overhead_percent >= -1e-6))
    rows

let test_exp_shapes_smoke () =
  let config =
    {
      (Exp_shapes.default_config ()) with
      Exp_shapes.trees = 2;
      nodes = 15;
      pre = 4;
      seed = 5;
    }
  in
  let rows = Exp_shapes.run config in
  check ci "five shapes" 5 (List.length rows);
  let chain = List.hd rows in
  check cb "chain is tallest" true
    (List.for_all
       (fun r -> r.Exp_shapes.mean_height <= chain.Exp_shapes.mean_height)
       rows);
  List.iter
    (fun r ->
      check cb "dp reuses at least gr" true
        (r.Exp_shapes.dp_reused >= r.Exp_shapes.gr_reused -. 1e-9))
    rows

let test_exp_trace_smoke () =
  let config =
    {
      (Exp_trace.default_config ()) with
      Exp_trace.trees = 2;
      nodes = 12;
      horizon = 8.;
      seed = 4;
    }
  in
  let rows = Exp_trace.run config [ 1.; 4. ] in
  check ci "two rows" 2 (List.length rows);
  let short = List.hd rows and long = List.nth rows 1 in
  check cb "short window, more epochs" true
    (short.Exp_trace.epochs > long.Exp_trace.epochs);
  check cb "short window, more reconfigurations" true
    (short.Exp_trace.reconfigurations >= long.Exp_trace.reconfigurations);
  List.iter
    (fun r ->
      check cb "stale fraction is a fraction" true
        (r.Exp_trace.stale_fraction >= 0. && r.Exp_trace.stale_fraction <= 1.);
      check cb "cost per time consistent" true
        (abs_float
           ((r.Exp_trace.total_cost /. 8.) -. r.Exp_trace.cost_per_time)
        < 1e-9))
    rows

let test_tables_render () =
  (* The table constructors must accept every experiment's output. *)
  let p = Exp1.run tiny_cost_config in
  check cb "exp1 table" true (String.length (Table.render (Exp1.to_table p)) > 0);
  let r = Exp2.run ~steps:3 tiny_cost_config in
  check cb "exp2 tables" true
    (String.length (Table.render (Exp2.steps_table r)) > 0
    && String.length (Table.render (Exp2.histogram_table r)) > 0);
  let e3 = Exp3.run tiny_power_config in
  check cb "exp3 table" true
    (String.length (Table.render (Exp3.to_table e3)) > 0);
  let ms = Scaling.measure_power_dp ~sizes:[ 8 ] ~shape:Workload.High () in
  check cb "scaling table" true
    (String.length (Table.render (Scaling.to_table ms)) > 0)

let () =
  Alcotest.run "experiments"
    [
      ( "stats",
        [
          Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
          Alcotest.test_case "extrema/median" `Quick test_extrema_median;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "confidence" `Quick test_confidence;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "row too long" `Quick test_table_too_long;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "fmt_float" `Quick test_fmt_float;
        ] );
      ( "par",
        [
          Alcotest.test_case "map equivalence" `Quick test_par_map_equivalence;
          Alcotest.test_case "map2" `Quick test_par_map2;
          Alcotest.test_case "exceptions" `Quick test_par_exception_propagates;
          Alcotest.test_case "domain-count invariance" `Quick test_par_domain_count_invariance_on_experiments;
        ] );
      ( "workload",
        [
          Alcotest.test_case "profiles" `Quick test_workload_profiles;
          Alcotest.test_case "draws" `Quick test_workload_draws;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "exp1 structure" `Quick test_exp1_structure;
          Alcotest.test_case "exp1 deterministic" `Quick test_exp1_deterministic;
          Alcotest.test_case "exp2 structure" `Quick test_exp2_structure;
          Alcotest.test_case "exp3 structure" `Quick test_exp3_structure;
          Alcotest.test_case "scaling smoke" `Quick test_scaling_smoke;
          Alcotest.test_case "tables render" `Quick test_tables_render;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "policies smoke" `Quick test_exp_policy_smoke;
          Alcotest.test_case "drift sweep" `Quick test_exp_policy_drift_sweep;
          Alcotest.test_case "heuristics smoke" `Quick test_exp_heuristics_smoke;
          Alcotest.test_case "update smoke" `Quick test_exp_update_smoke;
          Alcotest.test_case "shapes smoke" `Quick test_exp_shapes_smoke;
          Alcotest.test_case "trace smoke" `Quick test_exp_trace_smoke;
        ] );
    ]
