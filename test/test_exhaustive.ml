(* Small-scope exhaustive verification: enumerate EVERY tree shape with
   up to [max_nodes] internal nodes (parent arrays with parent(i) < i
   cover all rooted trees up to isomorphism-with-labels), a grid of
   client demands and pre-existing markings, and check the polynomial
   algorithms against the exhaustive oracle on all of them. Small-scope
   bugs (off-by-one in merges, boundary capacities, root handling) have
   nowhere to hide. *)

open Replica_tree
open Replica_core
open Helpers

let max_nodes = 4

(* The cheap solvers sweep one size further: all 24 labelled shapes on 5
   nodes with the full demand grid (~25k trees). *)
let max_nodes_light = 5

(* All parent vectors: parents.(0) = -1, parents.(i) in [0, i-1]. *)
let all_shapes n =
  let rec go i acc =
    if i >= n then acc
    else
      go (i + 1)
        (List.concat_map
           (fun parents ->
             List.init i (fun p -> parents @ [ p ]))
           acc)
  in
  go 1 [ [ -1 ] ]

(* Demand grids: every node gets one of these client lists. To keep the
   product tractable the grid is small but hits the boundary cases:
   idle, light, exactly W at one node, and two bundles. *)
let demand_choices = [ []; [ 2 ]; [ 5 ]; [ 3; 2 ] ]

let rec demand_grids n =
  if n = 0 then [ [] ]
  else
    List.concat_map
      (fun rest -> List.map (fun d -> d :: rest) demand_choices)
      (demand_grids (n - 1))

let w = 5

let trees_with_demands_up_to limit =
  List.concat_map
    (fun parents ->
      let n = List.length parents in
      List.map
        (fun demands ->
          Tree.of_parents
            ~parents:(Array.of_list parents)
            ~clients:(Array.of_list demands)
            ~pre:(Array.make n None))
        (demand_grids n))
    (List.concat_map all_shapes (List.init limit (fun i -> i + 1)))

let trees_with_demands () = trees_with_demands_up_to max_nodes

(* Every exact closest-policy cost solver the registry offers at this
   scale (greedy, dp-nopre, dp-withpre — the size-guarded oracle IS the
   reference here) against Brute.min_servers on the full light-sweep
   population. Registry-driven: a new exact cost solver joins this
   sweep by registering. *)
let scalable_exact_cost_solvers () =
  List.filter
    (fun (s : Solver.t) ->
      let c = s.Solver.capability in
      c.Solver.handles_cost
      && c.Solver.exactness = Solver.Exact
      && c.Solver.access = Solver.Closest
      && c.Solver.max_nodes = None)
    (Registry.all ())

let test_registry_cost_exhaustive () =
  let solvers = scalable_exact_cost_solvers () in
  check cb "registry offers the exact cost solvers" true
    (List.length solvers >= 3);
  let cases = ref 0 in
  List.iter
    (fun t ->
      incr cases;
      let brute = Option.map fst (Brute.min_servers t ~w) in
      let problem = Problem.min_servers t ~w in
      List.iter
        (fun (s : Solver.t) ->
          let got =
            Option.map
              (fun (o : Solver.outcome) -> o.Solver.servers)
              (s.Solver.solve problem Solver.default_request)
          in
          if got <> brute then
            Alcotest.failf "%s mismatch on %s: %s vs %s" s.Solver.name
              (Tree.to_string t)
              (match got with Some k -> string_of_int k | None -> "none")
              (match brute with Some k -> string_of_int k | None -> "none"))
        solvers)
    (trees_with_demands_up_to max_nodes_light);
  check cb "covered a real population" true (!cases > 20_000)

let test_multiple_vs_closest_exhaustive () =
  List.iter
    (fun t ->
      match (Multiple.solve t ~w, Greedy.solve_count t ~w) with
      | Some m, Some c ->
          if m.Multiple.servers > c then
            Alcotest.failf "multiple beat by closest on %s" (Tree.to_string t)
      | None, Some _ ->
          Alcotest.failf "multiple lost a closest solution on %s"
            (Tree.to_string t)
      | Some _, None | None, None -> ())
    (trees_with_demands_up_to max_nodes_light)

(* With pre-existing markings the product explodes; sample the shapes
   exhaustively but the markings per tree from a fixed subset. *)
let test_dp_withpre_exhaustive () =
  let cost = Cost.basic ~create:0.4 ~delete:0.3 () in
  List.iter
    (fun t ->
      let n = Tree.size t in
      (* Markings: none, node 0, last node, all. *)
      let markings =
        [ []; [ (0, 1) ]; [ (n - 1, 1) ]; List.init n (fun j -> (j, 1)) ]
      in
      List.iter
        (fun marking ->
          let t = Tree.with_pre_existing t marking in
          let dp =
            Option.map (fun r -> r.Dp_withpre.cost) (Dp_withpre.solve t ~w ~cost)
          in
          let brute = Option.map fst (Brute.min_basic_cost t ~w ~cost) in
          match (dp, brute) with
          | None, None -> ()
          | Some a, Some b ->
              if abs_float (a -. b) > 1e-9 then
                Alcotest.failf "dp_withpre mismatch on %s: %f vs %f"
                  (Tree.to_string t) a b
          | _ -> Alcotest.failf "feasibility mismatch on %s" (Tree.to_string t))
        markings)
    (trees_with_demands ())

let test_dp_power_exhaustive () =
  (* The power DP on every shape with a coarser demand grid (the state
     space is the expensive part, not the shapes). *)
  let modes = Modes.make [ 3; 5 ] in
  let power = Power.make ~static:1. ~alpha:2. () in
  let cost = Cost.paper_cheap ~modes:2 in
  let demand_choices = [ []; [ 2 ]; [ 5 ] ] in
  let rec grids n =
    if n = 0 then [ [] ]
    else
      List.concat_map
        (fun rest -> List.map (fun d -> d :: rest) demand_choices)
        (grids (n - 1))
  in
  List.iter
    (fun parents ->
      let n = List.length parents in
      List.iter
        (fun demands ->
          let t =
            Tree.of_parents
              ~parents:(Array.of_list parents)
              ~clients:(Array.of_list demands)
              ~pre:(Array.make n None)
          in
          let t =
            if n > 1 then Tree.with_pre_existing t [ (1, 2) ] else t
          in
          let dp =
            Option.map
              (fun r -> r.Dp_power.power)
              (Dp_power.solve t ~modes ~power ~cost ())
          in
          let brute =
            Option.map fst (Brute.min_power t ~modes ~power ~cost ())
          in
          match (dp, brute) with
          | None, None -> ()
          | Some a, Some b ->
              if abs_float (a -. b) > 1e-9 then
                Alcotest.failf "dp_power mismatch on %s" (Tree.to_string t)
          | _ -> Alcotest.failf "power feasibility mismatch on %s" (Tree.to_string t))
        (grids n))
    (List.concat_map all_shapes (List.init max_nodes (fun i -> i + 1)))

let test_shape_census () =
  (* Sanity on the enumerator itself: (i-1)! labelled shapes on i nodes
     (1, 1, 2, 6 for 1..4 nodes). *)
  check ci "1 node" 1 (List.length (all_shapes 1));
  check ci "2 nodes" 1 (List.length (all_shapes 2));
  check ci "3 nodes" 2 (List.length (all_shapes 3));
  check ci "4 nodes" 6 (List.length (all_shapes 4))

let () =
  Alcotest.run "exhaustive"
    [
      ( "small scope",
        [
          Alcotest.test_case "shape census" `Quick test_shape_census;
          Alcotest.test_case "registry cost solvers" `Slow
            test_registry_cost_exhaustive;
          Alcotest.test_case "multiple vs closest" `Slow test_multiple_vs_closest_exhaustive;
          Alcotest.test_case "dp_withpre" `Slow test_dp_withpre_exhaustive;
          Alcotest.test_case "dp_power" `Slow test_dp_power_exhaustive;
        ] );
    ]
