open Replica_tree
open Helpers

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

(* Golden vectors pin the generator to the published splitmix64
   reference (the seed-0 stream starts 0xE220A8397B1DCDAF...): any
   change to the mixing constants silently reshuffles every "seeded,
   deterministic" experiment in the repo, so the exact outputs are
   frozen here. *)
let test_golden_vectors () =
  let expect =
    [
      ( 0,
        [
          0xE220A8397B1DCDAFL; 0x6E789E6AA1B965F4L; 0x06C45D188009454FL;
          0xF88BB8A8724C81ECL; 0x1B39896A51A8749BL; 0x53CB9F0C747EA2EAL;
          0x2C829ABE1F4532E1L; 0xC584133AC916AB3CL;
        ] );
      ( 1,
        [
          0xBFEF8030DDC2D772L; 0x5F552CE482F2AA47L; 0x70335FC3DAF3D8A7L;
          0xF440FE3B62C79D2CL; 0x33BA2F29E7C168BBL; 0x98843F48A94B7866L;
          0x74AD4C24D41A25F8L; 0x2F9A1F13648EAB6EL;
        ] );
      ( 0xDEADBEEF,
        [
          0x279A0EB29629B2F9L; 0xEF1BA5FFCEE68F7CL; 0x37A307FDF0335768L;
          0x77D5ECE605A5FF2FL; 0xC2F94FE29D7276EBL; 0x6A4EBC46E10F3FA6L;
          0x40E8B2011D179B46L; 0x80171B68E985267AL;
        ] );
    ]
  in
  List.iter
    (fun (seed, outputs) ->
      let rng = Rng.create seed in
      List.iteri
        (fun i expected ->
          check Alcotest.int64
            (Printf.sprintf "seed %#x output %d" seed i)
            expected (Rng.bits64 rng))
        outputs)
    expect

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  check cb "different seeds differ" true !differs

let test_copy_independence () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  let va = Rng.bits64 a in
  let vb = Rng.bits64 b in
  check Alcotest.int64 "copy continues the stream" va vb

let test_split_independence () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let va = Rng.bits64 a and vb = Rng.bits64 b in
  check cb "split streams differ" true (va <> vb)

let test_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check cb "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_int_in_range () =
  let rng = Rng.create 4 in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    let v = Rng.int_in_range rng ~min:3 ~max:6 in
    check cb "in range" true (v >= 3 && v <= 6);
    seen.(v - 3) <- true
  done;
  Array.iteri (fun i s -> check cb (Printf.sprintf "value %d seen" (i + 3)) true s) seen;
  Alcotest.check_raises "inverted range"
    (Invalid_argument "Rng.int_in_range: max < min") (fun () ->
      ignore (Rng.int_in_range rng ~min:2 ~max:1))

let test_int_uniformity () =
  (* Coarse chi-square-free check: each of 10 buckets within 3x of mean. *)
  let rng = Rng.create 5 in
  let buckets = Array.make 10 0 in
  let n = 10_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      check cb
        (Printf.sprintf "bucket %d balanced (%d)" i c)
        true
        (c > n / 30 && c < n * 3 / 10))
    buckets

let test_float () =
  let rng = Rng.create 6 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    check cb "in range" true (v >= 0. && v < 2.5)
  done

let test_bernoulli () =
  let rng = Rng.create 8 in
  let hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check cb "close to 0.3" true (rate > 0.25 && rate < 0.35)

let test_shuffle_permutation () =
  let rng = Rng.create 9 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array ci) "still a permutation" (Array.init 50 Fun.id) sorted

let test_choose () =
  let rng = Rng.create 10 in
  for _ = 1 to 100 do
    let v = Rng.choose rng [| 1; 2; 3 |] in
    check cb "member" true (List.mem v [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng [||]))

let test_sample_without_replacement () =
  let rng = Rng.create 11 in
  for _ = 1 to 50 do
    let s = Rng.sample_without_replacement rng 5 12 in
    check ci "size" 5 (List.length s);
    check ci "distinct" 5 (List.length (List.sort_uniq compare s));
    List.iter (fun x -> check cb "in range" true (x >= 0 && x < 12)) s;
    check (Alcotest.list ci) "sorted" (List.sort compare s) s
  done;
  check (Alcotest.list ci) "all of them" [ 0; 1; 2 ]
    (Rng.sample_without_replacement rng 3 3);
  check (Alcotest.list ci) "none" [] (Rng.sample_without_replacement rng 0 5);
  Alcotest.check_raises "too many"
    (Invalid_argument "Rng.sample_without_replacement") (fun () ->
      ignore (Rng.sample_without_replacement rng 4 3))

let () =
  Alcotest.run "rng"
    [
      ( "streams",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "golden vectors" `Quick test_golden_vectors;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independence;
          Alcotest.test_case "split" `Quick test_split_independence;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int_in_range" `Quick test_int_in_range;
          Alcotest.test_case "uniformity" `Quick test_int_uniformity;
          Alcotest.test_case "float" `Quick test_float;
          Alcotest.test_case "bernoulli" `Quick test_bernoulli;
        ] );
      ( "collections",
        [
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "sampling" `Quick test_sample_without_replacement;
        ] );
    ]
