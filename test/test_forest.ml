(* Forest engine: coupled-repair differential against the exhaustive
   oracle, decoupled bit-identity, merged-trace conservation, and
   capability gating. *)

open Helpers
module F = Replica_forest.Forest
module FT = Replica_forest.Forest_trace
module FE = Replica_forest.Forest_engine
module FTl = Replica_forest.Forest_timeline
module Repair = Replica_forest.Repair
module Brute = Replica_forest.Brute_forest
module Engine = Replica_engine.Engine

let w = 10

let profile ~nodes ~max_requests =
  {
    Generator.nodes;
    min_children = 1;
    max_children = 3;
    client_probability = 0.7;
    min_requests = 1;
    max_requests;
  }

(* Slack regime for the differential suite: [objects * max_requests <= w]
   bounds any physical server's aggregate *direct-client* load by [w],
   so full replication everywhere is coupled-feasible. That guarantees
   (a) the oracle always has a solution and (b) push-down can always
   finish: an overloaded server must then hold a reducible replica.
   Pool sizes in [nodes, 2*nodes) force topologies to share machines. *)
let random_spec rng =
  let nodes = 3 + Rng.int rng 6 in
  let max_requests = 1 + Rng.int rng 2 in
  let max_objects =
    min (w / max_requests) (Brute.max_total_nodes / nodes)
  in
  let objects = 1 + Rng.int rng max_objects in
  let trees = 1 + Rng.int rng (min 3 objects) in
  let servers = nodes + Rng.int rng nodes in
  {
    F.trees;
    objects;
    servers;
    profile = profile ~nodes ~max_requests;
    seed = Rng.int rng 1_000_000;
  }

let demand_views forest =
  Array.map (fun (s : F.shard) -> s.F.tree) (F.shards forest)

let solve_shards trees_arr =
  Array.map
    (fun t ->
      match Greedy.solve t ~w with
      | Some s -> s
      | None -> Alcotest.fail "slack regime: greedy must be feasible")
    trees_arr

let test_repair_vs_oracle () =
  let instances = 120 in
  let exercised = ref 0 in
  for i = 0 to instances - 1 do
    let rng = Rng.create (1000 + i) in
    let forest = F.generate (random_spec rng) in
    let trees = demand_views forest in
    let pre = solve_shards trees in
    let name = Printf.sprintf "instance %d" i in
    match F.validate forest ~trees ~w pre with
    | Ok _ ->
        (* Nothing to repair: the pass must be the identity. *)
        let r = Repair.repair forest ~trees ~w pre in
        check ci (name ^ ": no pushdowns") 0 r.Repair.stats.Repair.pushdowns;
        Array.iteri
          (fun o sol ->
            check solution_testable
              (Printf.sprintf "%s shard %d untouched" name o)
              pre.(o) sol)
          r.Repair.placements
    | Error _ ->
        incr exercised;
        let r = Repair.repair forest ~trees ~w pre in
        check (Alcotest.list Alcotest.unit)
          (name ^ ": repair clears every violation")
          []
          (List.map (fun _ -> ()) r.Repair.violations);
        Array.iteri
          (fun o sol ->
            (* Supersets of the solver placements, still per-shard valid. *)
            Solution.nodes pre.(o)
            |> List.iter (fun j ->
                   check cb
                     (Printf.sprintf "%s shard %d keeps node %d" name o j)
                     true (Solution.mem sol j));
            check cb
              (Printf.sprintf "%s shard %d per-shard valid" name o)
              true
              (Solution.is_valid trees.(o) ~w sol))
          r.Repair.placements;
        (match F.validate forest ~trees ~w r.Repair.placements with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail (name ^ ": repaired forest still violated"));
        let opt =
          match Brute.solve forest ~trees ~w with
          | Some opt -> opt
          | None -> Alcotest.fail (name ^ ": oracle found no coupled solution")
        in
        (match F.validate forest ~trees ~w opt with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail (name ^ ": oracle solution invalid"));
        check cb
          (name ^ ": repair never beats the optimum")
          true
          (Brute.total_servers opt <= Brute.total_servers r.Repair.placements)
  done;
  (* The suite must actually stress the coupled path, not just pass
     vacuously on already-feasible instances. *)
  check cb "suite exercises repair" true (!exercised >= 20)

let ecfg =
  Engine.config ~policy:Update_policy.Systematic ~w
    (Engine.Min_cost (Cost.basic ~create:0.5 ~delete:0.25 ()))

let small_forest () =
  F.generate
    {
      F.trees = 3;
      objects = 6;
      servers = 20;
      profile = profile ~nodes:10 ~max_requests:4;
      seed = 7;
    }

let test_decoupled_bit_identity () =
  let forest = small_forest () in
  let ft =
    FT.generate forest ~horizon:6. ~seed:8
      (FT.Diurnal { period = 3.; floor = 0.25 })
  in
  let grid = FT.epochs ft forest ~window:1. in
  let run domains =
    let e = FE.create forest { FE.engine = ecfg; coupling = false; domains } in
    let tl = FTl.of_entries (List.map (FE.step e) grid) in
    (tl, FE.placements e)
  in
  let tl1, p1 = run 1 in
  let tl3, p3 = run 3 in
  Array.iteri
    (fun o sol ->
      check solution_testable
        (Printf.sprintf "shard %d identical at 1 vs 3 domains" o)
        sol p3.(o))
    p1;
  List.iter2
    (fun (a : FTl.entry) (b : FTl.entry) ->
      check ci "demand" a.FTl.demand b.FTl.demand;
      check ci "reconfigured" a.FTl.reconfigured_shards
        b.FTl.reconfigured_shards;
      check ci "servers" a.FTl.servers b.FTl.servers;
      check cf "step cost" a.FTl.step_cost b.FTl.step_cost)
    tl1.FTl.entries tl3.FTl.entries;
  (* The decoupled forest is exactly O independent engines. *)
  let solo = Array.map (fun _ -> Engine.create ecfg) (F.shards forest) in
  List.iter
    (fun views -> List.iteri (fun o v -> ignore (Engine.step solo.(o) v)) views)
    grid;
  Array.iteri
    (fun o e ->
      check solution_testable
        (Printf.sprintf "shard %d identical to independent engine" o)
        (Engine.placement e) p1.(o))
    solo

let test_merge_conservation () =
  let forest = small_forest () in
  List.iter
    (fun (label, wk) ->
      let ft = FT.generate forest ~horizon:6. ~seed:9 wk in
      check cb (label ^ ": conservation") true (FT.conservation ft);
      check ci
        (label ^ ": merged length is the sum of the shards")
        (Array.fold_left
           (fun a t -> a + Replica_trace.Trace.length t)
           0 ft.FT.per_shard)
        (FT.total_events ft);
      let grid = FT.epochs ft forest ~window:1. in
      List.iter
        (fun views ->
          check ci
            (label ^ ": one view per shard")
            (F.num_shards forest) (List.length views))
        grid)
    [
      ("poisson", FT.Poisson);
      ("diurnal", FT.Diurnal { period = 3.; floor = 0.25 });
      ("flash", FT.Flash { multiplier = 3. });
    ]

let test_stream_stability () =
  (* Adding shards must not perturb the existing shards' streams: shard
     o's trace depends only on the root seed and o. *)
  let spec objects =
    {
      F.trees = 3;
      objects;
      servers = 20;
      profile = profile ~nodes:10 ~max_requests:4;
      seed = 7;
    }
  in
  let f4 = F.generate (spec 4) and f6 = F.generate (spec 6) in
  let t4 = FT.generate f4 ~horizon:6. ~seed:8 FT.Poisson in
  let t6 = FT.generate f6 ~horizon:6. ~seed:8 FT.Poisson in
  for o = 0 to 3 do
    check cb
      (Printf.sprintf "shard %d stream unchanged by growth" o)
      true
      (Replica_trace.Trace.events t4.FT.per_shard.(o)
      = Replica_trace.Trace.events t6.FT.per_shard.(o))
  done

let test_capability_gating () =
  let forest = small_forest () in
  let cfg ?algo coupling =
    {
      FE.engine =
        Engine.config ~policy:Update_policy.Systematic ?algo ~w
          (Engine.Min_cost (Cost.basic ~create:0.5 ~delete:0.25 ()));
      coupling;
      domains = 1;
    }
  in
  (* Registry ground truth: closest-policy cost solvers handle coupling,
     the access-policy extensions and power solvers do not. *)
  List.iter
    (fun (algo, expected) ->
      match Registry.find algo with
      | Some s ->
          check cb
            (algo ^ " coupling capability")
            expected s.Solver.capability.Solver.handles_coupling
      | None -> Alcotest.fail (algo ^ " not registered"))
    [
      ("greedy", true);
      ("dp-nopre", true);
      ("dp-withpre", true);
      ("heuristic-cost", true);
      ("dp-qos", true);
      ("greedy-qos", true);
      ("brute", true);
      ("upwards", false);
      ("multiple", false);
      ("dp-power", false);
    ];
  (* A coupled engine on a non-coupling solver is rejected at creation. *)
  (match FE.create forest (cfg ~algo:"upwards" true) with
  | exception Invalid_argument msg ->
      check cb "rejection names the solver" true
        (String.length msg > 0
        && String.sub msg 0 (String.length "Forest_engine: upwards")
           = "Forest_engine: upwards")
  | _ -> Alcotest.fail "coupled upwards engine must be rejected");
  (* The same solver decoupled, and a coupling-capable solver coupled,
     are both fine. *)
  ignore (FE.create forest (cfg ~algo:"upwards" false));
  ignore (FE.create forest (cfg ~algo:"greedy" true));
  (match FE.create forest { (cfg true) with FE.domains = 0 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "domains = 0 must be rejected")

let test_generate_validation () =
  let base =
    { F.trees = 2; objects = 4; servers = 12; profile = profile ~nodes:6 ~max_requests:2; seed = 1 }
  in
  ignore (F.generate base);
  List.iter
    (fun spec ->
      match F.generate spec with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "invalid spec must be rejected")
    [
      { base with F.trees = 0 };
      { base with F.objects = 0 };
      { base with F.servers = 5 };
    ]

let () =
  Alcotest.run "forest"
    [
      ( "coupling",
        [
          Alcotest.test_case "repair vs exhaustive oracle" `Slow
            test_repair_vs_oracle;
          Alcotest.test_case "capability gating" `Quick test_capability_gating;
        ] );
      ( "engine",
        [
          Alcotest.test_case "decoupled bit-identity" `Quick
            test_decoupled_bit_identity;
        ] );
      ( "trace",
        [
          Alcotest.test_case "merge conservation" `Quick
            test_merge_conservation;
          Alcotest.test_case "stream stability under growth" `Quick
            test_stream_stability;
        ] );
      ( "spec",
        [
          Alcotest.test_case "generate validation" `Quick
            test_generate_validation;
        ] );
    ]
