(* QoS/bandwidth-constrained placement, proven against the exhaustive
   oracle.

   The load-bearing suite is differential: 250 random constrained
   instances where [Brute] (whose validity check now includes the
   constraint violations) is affordable, checking that
   - the exact constrained DP [Dp_qos] matches [Brute] on feasibility
     and optimal cost, through the registry adapter;
   - the constrained greedy agrees on feasibility exactly and is
     sandwiched (valid, never below the optimum);
   - relaxing QoS or bandwidth never increases the optimal cost and
     never loses feasibility (constraint monotonicity);
   - on fully unconstrained trees [Dp_qos] is bit-identical to
     [Dp_withpre] (placement, cost, servers, reused). *)

open Replica_tree
open Replica_core
open Replica_engine
open Helpers

let w = 5
let cost = Cost.basic ~create:0.4 ~delete:0.3 ()

let get_entry name =
  match Registry.find name with
  | Some s -> s
  | None -> Alcotest.failf "registry entry %S missing" name

let dp_qos_entry = get_entry "dp-qos"
let greedy_qos_entry = get_entry "greedy-qos"

(* Run a registry solver, mapping infeasibility to [None]. *)
let run_entry entry t =
  let problem = Problem.min_cost t ~w ~cost in
  match Solver.run entry problem Solver.default_request with
  | Ok r -> r
  | Error e -> Alcotest.failf "%s rejected a compatible problem: %s"
                 entry.Solver.name e

(* --- differential: Dp_qos and Greedy_qos vs the extended oracle --- *)

let test_dp_vs_brute () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed * 9001) in
      for rep = 1 to 25 do
        let t = constrained_instance rng in
        let tag = Printf.sprintf "seed=%d rep=%d" seed rep in
        let oracle = Brute.min_basic_cost t ~w ~cost in
        let dp = run_entry dp_qos_entry t in
        let greedy = run_entry greedy_qos_entry t in
        (match (dp, oracle) with
        | None, None -> ()
        | Some d, Some (bc, _) ->
            check cf (tag ^ ": optimal cost") bc
              (Option.value d.Solver.cost ~default:nan);
            check cb
              (tag ^ ": dp placement satisfies the constraints")
              true
              (Solution.is_valid t ~w d.Solver.solution)
        | Some _, None -> Alcotest.fail (tag ^ ": dp found a phantom solution")
        | None, Some _ -> Alcotest.fail (tag ^ ": dp missed a solution"));
        match (greedy, oracle) with
        | None, None -> ()
        | Some g, Some (bc, _) ->
            (* Feasibility-complete and sandwiched, not optimal. *)
            check cb
              (tag ^ ": greedy placement satisfies the constraints")
              true
              (Solution.is_valid t ~w g.Solver.solution);
            let gc = Option.value g.Solver.cost ~default:nan in
            check cb
              (Printf.sprintf "%s: greedy never beats the optimum (%f >= %f)"
                 tag gc bc)
              true
              (gc >= bc -. 1e-9)
        | Some _, None ->
            Alcotest.fail (tag ^ ": greedy found a phantom solution")
        | None, Some _ ->
            Alcotest.fail (tag ^ ": greedy missed a feasible instance")
      done)
    seeds

(* --- constraint relaxation is monotone --- *)

let loosen_qos t =
  Tree.with_qos t (fun j i ->
      let q = List.nth (Tree.client_qos t j) i in
      if q = Tree.unbounded then q else q + 1)

let lift_bandwidth t = Tree.with_bandwidth t (fun _ -> Tree.unbounded)

let unconstrain t = lift_bandwidth (Tree.with_qos t (fun _ _ -> Tree.unbounded))

let test_relaxation_monotone () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed * 9103) in
      for rep = 1 to 10 do
        let t = constrained_instance rng in
        let tag = Printf.sprintf "seed=%d rep=%d" seed rep in
        match Dp_qos.solve t ~w ~cost with
        | None ->
            (* Infeasible under constraints means infeasible without
               them too (capacity is the only true blocker under the
               closest policy), so nothing to compare — but the fully
               relaxed instance must agree with Dp_withpre. *)
            check cb
              (tag ^ ": relaxed feasibility matches dp-withpre")
              (Dp_withpre.solve (unconstrain t) ~w ~cost <> None)
              (Dp_qos.solve (unconstrain t) ~w ~cost <> None)
        | Some tight ->
            List.iter
              (fun (label, loosened) ->
                match Dp_qos.solve loosened ~w ~cost with
                | None ->
                    Alcotest.failf "%s: %s lost feasibility" tag label
                | Some r ->
                    check cb
                      (Printf.sprintf
                         "%s: %s never increases the optimum (%f <= %f)" tag
                         label r.Dp_qos.cost tight.Dp_qos.cost)
                      true
                      (r.Dp_qos.cost <= tight.Dp_qos.cost +. 1e-9))
              [
                ("looser qos", loosen_qos t);
                ("lifted bandwidth", lift_bandwidth t);
                ("fully relaxed", unconstrain t);
              ]
      done)
    seeds

(* --- unconstrained instances degenerate exactly to Dp_withpre --- *)

let test_unconstrained_equivalence () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed * 9209) in
      for rep = 1 to 10 do
        let t = instance rng ~max_pre:3 in
        let tag = Printf.sprintf "seed=%d rep=%d" seed rep in
        check cb (tag ^ ": instance is unconstrained") false
          (Tree.is_constrained t);
        match (Dp_qos.solve t ~w ~cost, Dp_withpre.solve t ~w ~cost) with
        | None, None -> ()
        | Some q, Some p ->
            check cb (tag ^ ": identical placement") true
              (Solution.equal q.Dp_qos.solution p.Dp_withpre.solution);
            check cf (tag ^ ": identical cost") p.Dp_withpre.cost
              q.Dp_qos.cost;
            check ci (tag ^ ": identical servers") p.Dp_withpre.servers
              q.Dp_qos.servers;
            check ci (tag ^ ": identical reused") p.Dp_withpre.reused
              q.Dp_qos.reused
        | _ -> Alcotest.fail (tag ^ ": feasibility disagreement")
      done)
    seeds

(* --- capability guards --- *)

let test_capability_rejection () =
  let t =
    Tree.build
      (Tree.node ~clients:[ 2 ]
         [ Tree.node ~clients:[ 3 ] ~qos:[ 1 ] [] ])
  in
  let problem = Problem.min_cost t ~w ~cost in
  List.iter
    (fun name ->
      match Solver.run (get_entry name) problem Solver.default_request with
      | Error _ -> ()
      | Ok _ ->
          Alcotest.failf "%s accepted a qos-constrained tree" name)
    [ "dp-withpre"; "dp-nopre"; "greedy"; "heuristic-cost" ];
  (* The bandwidth axis is guarded independently of the qos axis. *)
  let bw_only =
    Tree.build
      (Tree.node ~clients:[ 2 ] [ Tree.node ~clients:[ 3 ] ~bw:4 [] ])
  in
  (match
     Solver.run (get_entry "dp-withpre")
       (Problem.min_cost bw_only ~w ~cost)
       Solver.default_request
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dp-withpre accepted a bandwidth-capped tree");
  (* Constraint-capable solvers accept both regimes, and brute stays an
     oracle for them. *)
  List.iter
    (fun name ->
      match Solver.run (get_entry name) problem Solver.default_request with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s rejected a constrained tree: %s" name e)
    [ "dp-qos"; "greedy-qos"; "brute" ]

(* --- edge cases --- *)

(* QoS 0 forces a server at the attachment node; feasible whenever the
   node's own load fits. *)
let test_qos_zero_feasible () =
  let t =
    Tree.build
      (Tree.node [ Tree.node ~clients:[ 2 ] ~qos:[ 0 ] [] ])
  in
  match Dp_qos.min_servers t ~w with
  | None -> Alcotest.fail "qos 0 with fitting load must be feasible"
  | Some (n, sol) ->
      check ci "one server suffices" 1 n;
      check cb "the server sits at the attachment node" true
        (Solution.mem sol 1)

(* A node whose own load exceeds [w] is infeasible under the closest
   policy no matter what; with qos 0 every solver must agree on
   [No_solution] (the ISSUE's uniform-infeasibility case). *)
let test_qos_zero_infeasible_uniform () =
  let t =
    Tree.build (Tree.node [ Tree.node ~clients:[ w + 1 ] ~qos:[ 0 ] [] ])
  in
  check cb "brute: no solution" true (Brute.min_basic_cost t ~w ~cost = None);
  check cb "dp-qos: no solution" true (Dp_qos.solve t ~w ~cost = None);
  check cb "greedy-qos: no solution" true (Greedy_qos.solve t ~w = None);
  check cb "registry dp-qos: no solution" true (run_entry dp_qos_entry t = None);
  check cb "registry greedy-qos: no solution" true
    (run_entry greedy_qos_entry t = None)

(* Bandwidth exactly equal to the flow a link must carry is feasible
   (the cap is inclusive); one unit less forces a server below it. *)
let test_bandwidth_boundary () =
  let build bw =
    Tree.build (Tree.node ~clients:[ 1 ] [ Tree.node ~clients:[ 3 ] ~bw [] ])
  in
  (match Dp_qos.min_servers (build 3) ~w:10 with
  | Some (1, sol) ->
      check cb "single root server passes the saturated link" true
        (Solution.mem sol 0)
  | Some (n, _) -> Alcotest.failf "bw = demand: expected 1 server, got %d" n
  | None -> Alcotest.fail "bw = demand must be feasible");
  match Dp_qos.min_servers (build 2) ~w:10 with
  | Some (2, sol) ->
      check cb "undersized link forces a server at the child" true
        (Solution.mem sol 1)
  | Some (n, _) -> Alcotest.failf "bw < demand: expected 2 servers, got %d" n
  | None -> Alcotest.fail "bw < demand stays feasible via a child server"

let test_single_node () =
  let feasible = Tree.build (Tree.node ~clients:[ 2 ] ~qos:[ 0 ] []) in
  (match Dp_qos.min_servers feasible ~w with
  | Some (1, sol) -> check cb "server at the root" true (Solution.mem sol 0)
  | Some (n, _) -> Alcotest.failf "single node: expected 1 server, got %d" n
  | None -> Alcotest.fail "single node with fitting load must be feasible");
  let infeasible = Tree.build (Tree.node ~clients:[ w + 2 ] []) in
  check cb "brute: single node over capacity" true
    (Brute.min_basic_cost infeasible ~w ~cost = None);
  check cb "dp-qos: single node over capacity" true
    (Dp_qos.solve infeasible ~w ~cost = None);
  check cb "greedy-qos: single node over capacity" true
    (Greedy_qos.solve infeasible ~w = None)

(* --- serialization and epoch-view plumbing --- *)

let test_serialization_roundtrip () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed * 9311) in
      for rep = 1 to 5 do
        let t = constrained_instance rng in
        let tag = Printf.sprintf "seed=%d rep=%d" seed rep in
        check cb (tag ^ ": constrained round-trip") true
          (Tree.equal t (Tree.of_string (Tree.to_string t)));
        let u = instance rng ~max_pre:2 in
        let s = Tree.to_string u in
        check cb (tag ^ ": unconstrained round-trip") true
          (Tree.equal u (Tree.of_string s));
        check cb (tag ^ ": unconstrained strings carry no qos tokens") false
          (String.contains s '@')
      done)
    seeds

let test_with_clients_keeps_qos () =
  let t =
    Tree.build
      (Tree.node ~clients:[ 2; 1 ] ~qos:[ 3; 1 ]
         [ Tree.node ~clients:[ 4 ] ~qos:[ 2 ] [] ])
  in
  (* Same arity: bounds carried verbatim (the Epochs redraw path). *)
  let same = Tree.with_clients t (fun j -> List.map succ (Tree.clients t j)) in
  check (Alcotest.list ci) "same arity keeps qos verbatim" [ 3; 1 ]
    (Tree.client_qos same 0);
  check (Alcotest.list ci) "child bounds kept too" [ 2 ]
    (Tree.client_qos same 1);
  (* Changed arity: every new client inherits the node's tightest old
     bound, so a redraw can only preserve or tighten the constraint. *)
  let shrunk =
    Tree.with_clients t (fun j -> if j = 0 then [ 9 ] else Tree.clients t j)
  in
  check (Alcotest.list ci) "changed arity replicates the tightest bound"
    [ 1 ]
    (Tree.client_qos shrunk 0)

(* --- engine: constraints tightened mid-trace --- *)

let tighten_from ~epoch demands =
  List.mapi
    (fun i d ->
      if i + 1 >= epoch then
        Tree.with_bandwidth
          (Tree.with_qos d (fun _ _ -> 2))
          (fun j ->
            let demand = Tree.subtree_demand d j in
            if demand = 0 then Tree.unbounded else 2 * demand)
      else d)
    demands

let drifting_demands tree seed epochs =
  let rng = Rng.create seed in
  List.init epochs (fun _ ->
      Tree.with_clients tree (fun j ->
          List.filter_map
            (fun r ->
              if Rng.bernoulli rng 0.2 then None
              else
                Some
                  (min 4 (max 1 (r + Rng.int_in_range rng ~min:(-1) ~max:1))))
            (Tree.clients tree j)))

let test_engine_mid_trace_tightening () =
  let tree = small_tree (Rng.create 47) ~nodes:9 ~max_requests:3 in
  let demands = tighten_from ~epoch:4 (drifting_demands tree 11 7) in
  let cfg =
    Engine.config ~policy:Update_policy.Systematic ~algo:"dp-qos" ~w:10
      (Engine.Min_cost cost)
  in
  let engine = Engine.create cfg in
  List.iteri
    (fun i demand ->
      let entry = Engine.step engine demand in
      check cb
        (Printf.sprintf "epoch %d placement stays valid" (i + 1))
        true entry.Timeline.valid;
      (* The recorded placement satisfies the epoch's own constraints —
         including from the tightening epoch on. *)
      check cb
        (Printf.sprintf "epoch %d placement honours the epoch constraints"
           (i + 1))
        true
        (Solution.is_valid demand ~w:10 entry.Timeline.servers))
    demands

let test_engine_rejects_incapable_solver () =
  let tree = small_tree (Rng.create 48) ~nodes:6 ~max_requests:3 in
  let cfg =
    Engine.config ~policy:Update_policy.Systematic ~algo:"dp-withpre" ~w:10
      (Engine.Min_cost cost)
  in
  let engine = Engine.create cfg in
  (* Unconstrained epochs sail through... *)
  let entry = Engine.step engine tree in
  check cb "unconstrained epoch accepted" true entry.Timeline.valid;
  (* ...but the epoch that turns constraints on fails fast instead of
     silently emitting constraint-violating placements. *)
  Alcotest.check_raises "constrained epoch rejected"
    (Invalid_argument
       "Engine: dp-withpre cannot enforce the epoch's QoS bounds (use a \
        qos-capable solver, e.g. dp-qos)") (fun () ->
      ignore (Engine.step engine (Tree.with_qos tree (fun _ _ -> 1))));
  Alcotest.check_raises "bandwidth-capped epoch rejected"
    (Invalid_argument
       "Engine: dp-withpre cannot enforce the epoch's bandwidth caps (use a \
        bw-capable solver, e.g. dp-qos)") (fun () ->
      ignore
        (Engine.step engine (Tree.with_bandwidth tree (fun j -> 100 + j))))

let () =
  Alcotest.run "qos"
    [
      ( "differential",
        [
          Alcotest.test_case "250 instances vs brute" `Slow test_dp_vs_brute;
          Alcotest.test_case "relaxation monotone" `Slow
            test_relaxation_monotone;
          Alcotest.test_case "unconstrained = dp-withpre" `Slow
            test_unconstrained_equivalence;
        ] );
      ( "capability",
        [
          Alcotest.test_case "incapable solvers reject" `Quick
            test_capability_rejection;
        ] );
      ( "edge",
        [
          Alcotest.test_case "qos 0, fitting load" `Quick
            test_qos_zero_feasible;
          Alcotest.test_case "qos 0, uniform infeasibility" `Quick
            test_qos_zero_infeasible_uniform;
          Alcotest.test_case "bandwidth boundary" `Quick
            test_bandwidth_boundary;
          Alcotest.test_case "single node" `Quick test_single_node;
          Alcotest.test_case "serialization round-trip" `Quick
            test_serialization_roundtrip;
          Alcotest.test_case "with_clients keeps qos" `Quick
            test_with_clients_keeps_qos;
        ] );
      ( "engine",
        [
          Alcotest.test_case "mid-trace tightening" `Quick
            test_engine_mid_trace_tightening;
          Alcotest.test_case "incapable solver raises" `Quick
            test_engine_rejects_incapable_solver;
        ] );
    ]
