open Replica_tree
open Replica_trace
open Helpers

let ev time node client = { Trace.time; node; client }

(* Fixture: root with clients [2], child with clients [3; 1]. *)
let sample_tree () =
  Tree.build (Tree.node ~clients:[ 2 ] [ Tree.node ~clients:[ 3; 1 ] [] ])

(* --- Trace --- *)

let test_of_events_sorts () =
  let t = Trace.of_events [ ev 3. 0 0; ev 1. 1 0; ev 2. 1 1 ] in
  check ci "length" 3 (Trace.length t);
  let times = List.map (fun e -> e.Trace.time) (Trace.events t) in
  check (Alcotest.list cf) "sorted" [ 1.; 2.; 3. ] times;
  check cf "duration" 3. (Trace.duration t)

let test_of_events_rejects_negative () =
  Alcotest.check_raises "negative time"
    (Invalid_argument "Trace.of_events: negative timestamp") (fun () ->
      ignore (Trace.of_events [ ev (-1.) 0 0 ]))

let test_empty () =
  let t = Trace.of_events [] in
  check ci "empty" 0 (Trace.length t);
  check cf "zero duration" 0. (Trace.duration t);
  check (Alcotest.list (Alcotest.pair (Alcotest.pair ci ci) ci)) "no counts" []
    (Trace.count_by_client t)

let test_merge_and_filter () =
  let a = Trace.of_events [ ev 1. 0 0; ev 3. 0 0 ] in
  let b = Trace.of_events [ ev 2. 1 0 ] in
  let m = Trace.merge a b in
  check ci "merged" 3 (Trace.length m);
  let times = List.map (fun e -> e.Trace.time) (Trace.events m) in
  check (Alcotest.list cf) "interleaved" [ 1.; 2.; 3. ] times;
  let only_node0 = Trace.filter (fun e -> e.Trace.node = 0) m in
  check ci "filtered" 2 (Trace.length only_node0)

let test_count_by_client () =
  let t = Trace.of_events [ ev 1. 0 0; ev 2. 1 0; ev 3. 0 0; ev 4. 1 1 ] in
  check
    (Alcotest.list (Alcotest.pair (Alcotest.pair ci ci) ci))
    "counts"
    [ ((0, 0), 2); ((1, 0), 1); ((1, 1), 1) ]
    (Trace.count_by_client t)

(* --- Arrivals --- *)

let test_poisson_rate_convergence () =
  (* Over a long horizon, per-client event counts approach rate·horizon. *)
  let tree = sample_tree () in
  let rng = Rng.create 21 in
  let horizon = 500. in
  let trace = Arrivals.poisson rng tree ~horizon in
  List.iter
    (fun ((node, client), count) ->
      let rate = float_of_int (List.nth (Tree.clients tree node) client) in
      let expected = rate *. horizon in
      let observed = float_of_int count in
      check cb
        (Printf.sprintf "node %d client %d within 15%%" node client)
        true
        (abs_float (observed -. expected) < 0.15 *. expected))
    (Trace.count_by_client trace);
  check ci "all clients emitted" 3 (List.length (Trace.count_by_client trace))

let test_poisson_determinism () =
  let tree = sample_tree () in
  let a = Arrivals.poisson (Rng.create 5) tree ~horizon:50. in
  let b = Arrivals.poisson (Rng.create 5) tree ~horizon:50. in
  check ci "same length" (Trace.length a) (Trace.length b)

let test_poisson_validation () =
  Alcotest.check_raises "bad horizon"
    (Invalid_argument "Arrivals.poisson: horizon must be positive") (fun () ->
      ignore (Arrivals.poisson (Rng.create 1) (sample_tree ()) ~horizon:0.))

let test_diurnal_thins () =
  (* The diurnal trace is a thinning of the max-rate process: strictly
     fewer events than plain Poisson in expectation when floor < 1. *)
  let tree = sample_tree () in
  let horizon = 400. in
  let plain = Arrivals.poisson (Rng.create 9) tree ~horizon in
  let cycled =
    Arrivals.diurnal (Rng.create 9) tree ~horizon ~period:100. ~floor:0.2
  in
  check cb "fewer events" true (Trace.length cycled < Trace.length plain);
  (* The average modulation is (1 + floor)/2 = 0.6: expect roughly that
     fraction. *)
  let ratio = float_of_int (Trace.length cycled) /. float_of_int (Trace.length plain) in
  check cb "ratio near 0.6" true (ratio > 0.45 && ratio < 0.75)

let test_diurnal_validation () =
  let t = sample_tree () in
  Alcotest.check_raises "bad floor"
    (Invalid_argument "Arrivals.diurnal: floor must be within [0, 1]")
    (fun () ->
      ignore (Arrivals.diurnal (Rng.create 1) t ~horizon:10. ~period:5. ~floor:2.))

let test_flash_crowd_localized () =
  let tree = sample_tree () in
  let rng = Rng.create 31 in
  let base = Arrivals.poisson rng tree ~horizon:100. in
  let spiked =
    Arrivals.flash_crowd rng tree ~base ~at:40. ~duration:20. ~node:1
      ~multiplier:4.
  in
  check cb "more events" true (Trace.length spiked > Trace.length base);
  (* Every extra event is in node 1's subtree and within the window. *)
  let extra = Trace.length spiked - Trace.length base in
  let in_window =
    Trace.filter
      (fun e -> e.Trace.node = 1 && e.Trace.time >= 40. && e.Trace.time < 60.)
      spiked
  in
  let base_in_window =
    Trace.filter
      (fun e -> e.Trace.node = 1 && e.Trace.time >= 40. && e.Trace.time < 60.)
      base
  in
  check ci "extras localized" extra
    (Trace.length in_window - Trace.length base_in_window)

(* --- Epochs --- *)

let test_rates_rounding () =
  let tree = sample_tree () in
  (* 6 events for (1,0) in window [0,2): rate 3; 1 event for (0,0): 0.5
     rounds to 1... Float.round 0.5 = 1. *)
  let trace =
    Trace.of_events
      (List.init 6 (fun i -> ev (0.3 *. float_of_int i) 1 0) @ [ ev 1.5 0 0 ])
  in
  let epoch = Epochs.rates trace tree ~window:2. ~index:0 in
  check ci "node 1 rate" 3 (Tree.client_load epoch 1);
  check ci "node 0 rate" 1 (Tree.client_load epoch 0)

let test_idle_clients_dropped () =
  let tree = sample_tree () in
  let trace = Trace.of_events [ ev 0.5 1 0 ] in
  let epoch = Epochs.rates trace tree ~window:1. ~index:0 in
  check ci "only one client left" 1 (Tree.num_clients epoch);
  (* Structure preserved. *)
  check ci "same size" (Tree.size tree) (Tree.size epoch)

let test_epoch_partition () =
  let tree = sample_tree () in
  let trace = Trace.of_events [ ev 0.5 0 0; ev 4.5 1 0; ev 9.9 1 1 ] in
  check ci "epoch count" 2 (Epochs.epoch_count trace ~window:5.);
  let epochs = Epochs.epochs trace tree ~window:5. in
  check ci "two epochs" 2 (List.length epochs);
  check cb "conservation" true (Epochs.conservation_check trace tree ~window:5.)

let test_empty_trace_epochs () =
  let tree = sample_tree () in
  let trace = Trace.of_events [] in
  let epochs = Epochs.epochs trace tree ~window:3. in
  check ci "one idle epoch" 1 (List.length epochs);
  check ci "no demand" 0 (Tree.total_requests (List.hd epochs))

let test_epochs_validation () =
  let trace = Trace.of_events [] in
  Alcotest.check_raises "bad window"
    (Invalid_argument "Epochs: window must be positive") (fun () ->
      ignore (Epochs.epoch_count trace ~window:0.));
  Alcotest.check_raises "bad index"
    (Invalid_argument "Epochs: negative index") (fun () ->
      ignore (Epochs.rates trace (sample_tree ()) ~window:1. ~index:(-1)))

(* Windowed aggregation conserves every event, whatever the arrival
   process (the flash-crowd generator included — previously untested). *)
let trace_case_gen =
  QCheck2.Gen.map
    (fun (seed, nodes, knobs) ->
      let rng = Rng.create (1 + seed) in
      let nodes = 1 + (nodes mod 10) in
      let tree = small_tree rng ~nodes ~max_requests:4 in
      let kind = knobs mod 3 in
      let horizon = 6. +. float_of_int (knobs mod 4) in
      let trace =
        match kind with
        | 0 -> Arrivals.poisson rng tree ~horizon
        | 1 ->
            Arrivals.diurnal rng tree ~horizon ~period:(horizon /. 2.)
              ~floor:0.25
        | _ ->
            let base = Arrivals.poisson rng tree ~horizon in
            let node = Rng.int rng (Tree.size tree) in
            Arrivals.flash_crowd rng tree ~base ~at:(horizon /. 4.)
              ~duration:(horizon /. 3.) ~node ~multiplier:3.
      in
      let window = 0.5 +. (0.5 *. float_of_int (knobs mod 5)) in
      (tree, trace, window))
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_bound 1_000) (int_bound 1_000))

let prop_aggregation_conserves_requests =
  qcheck_case "epochs conserve events on poisson/diurnal/flash traces"
    trace_case_gen
    (fun (tree, trace, window) ->
      Epochs.conservation_check trace tree ~window)

let prop_epochs_cover_trace =
  qcheck_case "every event lands in exactly one epoch window" trace_case_gen
    (fun (_, trace, window) ->
      let epochs = Epochs.epoch_count trace ~window in
      epochs >= 1
      && Trace.duration trace <= (float_of_int epochs *. window) +. 1e-9)

(* --- changed_nodes (epoch diffing for the incremental engine) --- *)

let test_changed_nodes_identity () =
  let tree = sample_tree () in
  check (Alcotest.list ci) "no change" [] (Epochs.changed_nodes tree tree)

let test_changed_nodes_exact () =
  let tree = sample_tree () in
  let next =
    Tree.with_clients tree (fun j ->
        if j = 1 then [ 4; 1 ] else Tree.clients tree j)
  in
  check (Alcotest.list ci) "only node 1" [ 1 ] (Epochs.changed_nodes tree next);
  check (Alcotest.list ci) "symmetric" [ 1 ] (Epochs.changed_nodes next tree)

let test_changed_nodes_size_mismatch () =
  let small = sample_tree () in
  let big = Tree.build (Tree.node ~clients:[ 1 ] [ Tree.node []; Tree.node [] ]) in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Epochs: changed_nodes expects views of one network")
    (fun () -> ignore (Epochs.changed_nodes small big))

let prop_changed_nodes_match_direct_diff =
  qcheck_case "changed_nodes = the nodes whose multisets differ"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 1_000))
    (fun (seed, mask) ->
      let rng = Rng.create (1 + seed) in
      let tree = small_tree rng ~nodes:(1 + (mask mod 9)) ~max_requests:4 in
      let next =
        Tree.with_clients tree (fun j ->
            let cs = Tree.clients tree j in
            if (mask lsr (j mod 10)) land 1 = 1 then
              match cs with c :: rest -> (c + 1) :: rest | [] -> [ 1 ]
            else cs)
      in
      let expected =
        List.filter
          (fun j -> Tree.clients tree j <> Tree.clients next j)
          (List.init (Tree.size tree) Fun.id)
      in
      Epochs.changed_nodes tree next = expected)

let test_end_to_end_rates () =
  (* Poisson trace aggregated over whole-trace windows recovers the
     original request counts approximately. *)
  let tree = sample_tree () in
  let rng = Rng.create 77 in
  let trace = Arrivals.poisson rng tree ~horizon:300. in
  let epochs = Epochs.epochs trace tree ~window:100. in
  List.iter
    (fun epoch ->
      check cb "total demand near original" true
        (abs (Tree.total_requests epoch - Tree.total_requests tree) <= 2))
    epochs

let () =
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "sorting" `Quick test_of_events_sorts;
          Alcotest.test_case "negative time" `Quick test_of_events_rejects_negative;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "merge/filter" `Quick test_merge_and_filter;
          Alcotest.test_case "count by client" `Quick test_count_by_client;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "poisson rates" `Slow test_poisson_rate_convergence;
          Alcotest.test_case "determinism" `Quick test_poisson_determinism;
          Alcotest.test_case "validation" `Quick test_poisson_validation;
          Alcotest.test_case "diurnal thinning" `Slow test_diurnal_thins;
          Alcotest.test_case "diurnal validation" `Quick test_diurnal_validation;
          Alcotest.test_case "flash crowd" `Quick test_flash_crowd_localized;
        ] );
      ( "epochs",
        [
          Alcotest.test_case "rounding" `Quick test_rates_rounding;
          Alcotest.test_case "idle clients" `Quick test_idle_clients_dropped;
          Alcotest.test_case "partition" `Quick test_epoch_partition;
          Alcotest.test_case "empty trace" `Quick test_empty_trace_epochs;
          Alcotest.test_case "validation" `Quick test_epochs_validation;
          Alcotest.test_case "end to end" `Slow test_end_to_end_rates;
          prop_aggregation_conserves_requests;
          prop_epochs_cover_trace;
        ] );
      ( "changed nodes",
        [
          Alcotest.test_case "identity" `Quick test_changed_nodes_identity;
          Alcotest.test_case "exact" `Quick test_changed_nodes_exact;
          Alcotest.test_case "size mismatch" `Quick
            test_changed_nodes_size_mismatch;
          prop_changed_nodes_match_direct_diff;
        ] );
    ]
