(* Shared helpers for the test suites. *)

open Replica_tree
open Replica_core

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cf = Alcotest.float 1e-9

(* Small random trees for cross-checks against the brute-force oracle. *)
let small_tree rng ~nodes ~max_requests =
  let profile =
    {
      Generator.nodes;
      min_children = 1;
      max_children = 3;
      client_probability = 0.7;
      min_requests = 1;
      max_requests;
    }
  in
  Generator.random rng profile

let small_tree_with_pre rng ~nodes ~max_requests ~pre =
  let t = small_tree rng ~nodes ~max_requests in
  Generator.add_pre_existing rng t pre

(* Shared instance generators — one definition each for the random
   shapes the differential suites draw, so every suite fuzzes the same
   population and a new suite doesn't grow its own private copy. *)

(* 2-8 nodes with up to [max_pre] pre-existing servers (the power and
   cost differential suites' staple). *)
let instance rng ~max_pre =
  let nodes = 2 + Rng.int rng 7 in
  let pre = Rng.int rng (min max_pre nodes + 1) in
  small_tree_with_pre rng ~nodes ~max_requests:4 ~pre

(* 2-9 nodes, no pre-existing servers: the one regime every exact
   closest-policy cost solver provably shares. *)
let no_pre_instance rng =
  let nodes = 2 + Rng.int rng 8 in
  small_tree rng ~nodes ~max_requests:4

(* [instance] plus a random QoS/bandwidth regime: the two generator
   presets, a qos-only and a bw-only draw — mixing clearly feasible,
   clearly infeasible and boundary instances. *)
let constrained_instance rng =
  let t = instance rng ~max_pre:2 in
  match Rng.int rng 4 with
  | 0 -> Generator.tight_constraints rng t
  | 1 -> Generator.loose_constraints rng t
  | 2 -> Generator.add_qos rng t ~min_qos:0 ~max_qos:3
  | _ -> Generator.add_bandwidth rng t ~slack:(0.5 +. Rng.float rng 1.5)

(* Seeded synthetic request trace over [tree]: kind 0 = homogeneous
   Poisson, 1 = diurnal, anything else = Poisson plus a flash crowd on a
   random subtree. *)
let workload_trace rng tree ~kind ~horizon =
  let open Replica_trace in
  match kind with
  | 0 -> Arrivals.poisson rng tree ~horizon
  | 1 -> Arrivals.diurnal rng tree ~horizon ~period:(horizon /. 2.) ~floor:0.3
  | _ ->
      let base = Arrivals.poisson rng tree ~horizon in
      let node = Rng.int rng (Tree.size tree) in
      Arrivals.flash_crowd rng tree ~base ~at:(horizon /. 4.)
        ~duration:(horizon /. 3.) ~node ~multiplier:3.

(* The paper's Figure 1 situation (§3.1), W = 10. Node ids in comments.
   Keeping only B leaves 7 requests traversing A (C's clients); removing
   B and placing a server at C leaves 4 (B's clients); keeping B and
   adding a server at A or C leaves 0. With [root_requests = 2] the
   optimum reuses B ({B, root}); with [root_requests = 4] it does not
   ({C, root}). *)
let figure1_tree ~root_requests =
  Tree.build
    (Tree.node ~clients:[ root_requests ] (* root = 0 *)
       [
         Tree.node (* A = 1 *)
           [
             Tree.node ~clients:[ 4 ] ~pre:1 [] (* B = 2 *);
             Tree.node ~clients:[ 7 ] [] (* C = 3 *);
           ];
       ])

let fig1_root = 0
let fig1_a = 1
let fig1_b = 2
let fig1_c = 3

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Deterministic seeds for reproducible suites. *)
let seeds = [ 1; 2; 3; 5; 8; 13; 21; 34; 55; 89 ]

let modes_2 = Modes.make [ 5; 10 ]
let power_exp3 = Power.paper_exp3 ~modes:modes_2
let cost_cheap = Cost.paper_cheap ~modes:2
let cost_expensive = Cost.paper_expensive ~modes:2
let zero_cost = Cost.basic ()

let solution_testable =
  Alcotest.testable Solution.pp Solution.equal
