open Replica_tree
open Replica_core
open Helpers

(* Differential harness for the instrumented/pruned/parallel MinPower DP:
   hundreds of small seeded instances where the exhaustive oracle is
   affordable, checking that
   - the default [Dp_power.solve] matches [Brute] on (power, cost);
   - dominance pruning is exactly answer-preserving wherever the mirror
     argument (see dp_power.ml) says it is: always at [bound = infinity],
     and at finite bounds under mode-monotone cost models;
   - the pruned merge does strictly less work, never more;
   - [domains > 1] is bit-identical to the sequential run. *)

let modes_3 = Modes.make [ 3; 6; 9 ]
let power_3 = Power.make ~static:2. ~alpha:2. ()
let cost_cheap3 = Cost.paper_cheap ~modes:3

(* changed = 0 makes these mode-monotone (Cost.is_mode_monotone), so the
   DP defaults to pruning even at finite bounds. *)
let cost_mono2 = Cost.modal_uniform ~modes:2 ~create:0.3 ~delete:0.2 ~changed:0.
let cost_mono3 = Cost.modal_uniform ~modes:3 ~create:0.3 ~delete:0.2 ~changed:0.

let c_products = Stats_counters.counter "dp_power.merge_products"
let c_dominance = Stats_counters.counter "dp_power.dominance_pruned"

(* Random instances come from the shared [Helpers.instance] generator. *)

(* The exhaustive (power, cost) optimum: minimal power among
   bound-feasible placements, then minimal cost among the placements
   achieving it — the lexicographic objective [Dp_power.solve] returns. *)
let brute_power_cost t ~modes ~power ~cost ~bound =
  let w = Modes.max_capacity modes in
  let feasible =
    Brute.fold_valid t ~w ~init:[] ~f:(fun acc sol _ ->
        let c = Solution.modal_cost t modes cost sol in
        if c > bound then acc
        else (Solution.power t modes power sol, c) :: acc)
  in
  match feasible with
  | [] -> None
  | l ->
      let minp = List.fold_left (fun m (p, _) -> min m p) infinity l in
      let minc =
        List.fold_left
          (fun m (p, c) -> if p <= minp +. 1e-9 then min m c else m)
          infinity l
      in
      Some (minp, minc)

(* The solver under test is resolved through the registry (exercising
   the adapter seam the engine/CLI/bench use), not called directly. *)
let dp_power_entry =
  match Registry.find "dp-power" with
  | Some s -> s
  | None -> failwith "dp-power not registered"

let check_against_brute ~tag t ~modes ~power ~cost ~bound =
  let problem = Problem.min_power t ~modes ~power ~cost ~bound () in
  let dp = dp_power_entry.Solver.solve problem Solver.default_request in
  let oracle = brute_power_cost t ~modes ~power ~cost ~bound in
  match (dp, oracle) with
  | None, None -> ()
  | Some d, Some (bp, bc) ->
      check cf (tag ^ ": power") bp (Option.value d.Solver.power ~default:nan);
      check cf (tag ^ ": cost") bc (Option.value d.Solver.cost ~default:nan)
  | Some _, None -> Alcotest.fail (tag ^ ": dp found a phantom solution")
  | None, Some _ -> Alcotest.fail (tag ^ ": dp missed a solution")

(* Pruned and unpruned runs must return identical (power, cost) — and
   the pruned one must attempt strictly fewer (well, never more) merge
   products. Counter deltas are measured around each run. *)
let check_prune_invariance ~tag t ~modes ~power ~cost ~bound =
  let run prune =
    let before = Stats_counters.value c_products in
    let r = Dp_power.solve t ~modes ~power ~cost ~bound ~prune () in
    (r, Stats_counters.value c_products - before)
  in
  let unpruned, products_unpruned = run false in
  let pruned, products_pruned = run true in
  (match (unpruned, pruned) with
  | None, None -> ()
  | Some u, Some p ->
      check cf (tag ^ ": pruned power") u.Dp_power.power p.Dp_power.power;
      check cf (tag ^ ": pruned cost") u.Dp_power.cost p.Dp_power.cost
  | _ -> Alcotest.fail (tag ^ ": pruning changed feasibility"));
  check cb
    (tag ^ ": pruning never does more merge work")
    true
    (products_pruned <= products_unpruned)

(* 100 instances, 2 modes, with and without pre-existing servers, under
   the paper's (non-mode-monotone) cheap cost model. Pure MinPower, so
   pruning is exact by the mirror argument even for this cost model. *)
let test_two_modes_vs_brute () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed * 1009) in
      for rep = 1 to 10 do
        let t = instance rng ~max_pre:(if rep mod 2 = 0 then 3 else 0) in
        let tag = Printf.sprintf "2m seed=%d rep=%d" seed rep in
        check_against_brute ~tag t ~modes:modes_2 ~power:power_exp3
          ~cost:cost_cheap ~bound:infinity;
        check_prune_invariance ~tag t ~modes:modes_2 ~power:power_exp3
          ~cost:cost_cheap ~bound:infinity
      done)
    seeds

(* 60 instances with 3 modes and pre-existing servers at random initial
   modes — the state vector grows to 3 + 9 + 1 entries. *)
let test_three_modes_vs_brute () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed * 2003) in
      for rep = 1 to 6 do
        let nodes = 2 + Rng.int rng 7 in
        let t = small_tree rng ~nodes ~max_requests:3 in
        let marks =
          List.filter_map
            (fun j ->
              if Rng.bernoulli rng 0.4 then Some (j, 1 + Rng.int rng 3)
              else None)
            (List.init nodes Fun.id)
        in
        let t = Tree.with_pre_existing t marks in
        let tag = Printf.sprintf "3m seed=%d rep=%d" seed rep in
        check_against_brute ~tag t ~modes:modes_3 ~power:power_3
          ~cost:cost_cheap3 ~bound:infinity;
        check_prune_invariance ~tag t ~modes:modes_3 ~power:power_3
          ~cost:cost_cheap3 ~bound:infinity
      done)
    seeds

(* 80 instances at finite cost bounds under mode-monotone cost models,
   where pruning must stay exact bound-by-bound. *)
let test_bounded_monotone_vs_brute () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed * 4001) in
      for rep = 1 to 8 do
        let t = instance rng ~max_pre:3 in
        let bound = 0.5 +. Rng.float rng 6. in
        let modes, power, cost =
          if rep mod 2 = 0 then (modes_2, power_exp3, cost_mono2)
          else (modes_3, power_3, cost_mono3)
        in
        check cb "model is mode-monotone" true (Cost.is_mode_monotone cost);
        let tag = Printf.sprintf "bounded seed=%d rep=%d" seed rep in
        check_against_brute ~tag t ~modes ~power ~cost ~bound;
        check_prune_invariance ~tag t ~modes ~power ~cost ~bound
      done)
    seeds

(* The paper's cheap model at finite bounds is the known-unsound corner
   for flow-minimal tables (DESIGN.md): the default must therefore NOT
   prune there, and must still match brute. *)
let test_bounded_nonmonotone_default_is_safe () =
  check cb "paper cheap model is not mode-monotone" false
    (Cost.is_mode_monotone cost_cheap);
  List.iter
    (fun seed ->
      let rng = Rng.create (seed * 5003) in
      for rep = 1 to 4 do
        let t = instance rng ~max_pre:3 in
        let bound = 1. +. Rng.float rng 5. in
        let tag = Printf.sprintf "nonmono seed=%d rep=%d" seed rep in
        check_against_brute ~tag t ~modes:modes_2 ~power:power_exp3
          ~cost:cost_cheap ~bound
      done)
    seeds

(* Frontier invariants: sorted by strictly increasing cost with strictly
   decreasing power, and (under a mode-monotone model) identical with
   and without pruning. *)
let test_frontier_pruned_matches_unpruned () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed * 6007) in
      let t = instance rng ~max_pre:3 in
      let points prune =
        List.map
          (fun r -> (r.Dp_power.cost, r.Dp_power.power))
          (Dp_power.frontier ~prune t ~modes:modes_2 ~power:power_exp3
             ~cost:cost_mono2)
      in
      let unpruned = points false and pruned = points true in
      check ci "same frontier size" (List.length unpruned)
        (List.length pruned);
      List.iter2
        (fun (c1, p1) (c2, p2) ->
          check cf "frontier cost" c1 c2;
          check cf "frontier power" p1 p2)
        unpruned pruned;
      let rec walk = function
        | (c1, p1) :: ((c2, p2) :: _ as rest) ->
            check cb "cost strictly increases" true (c1 < c2);
            check cb "power strictly decreases" true (p2 < p1);
            walk rest
        | _ -> ()
      in
      walk unpruned)
    seeds

(* Parallel sibling merges must be bit-identical to sequential ones,
   including on trees wide enough to actually fan out. *)
let test_domains_bit_identical () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed * 7001) in
      let t = instance rng ~max_pre:2 in
      let solve domains =
        Dp_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
          ~domains ()
      in
      match (solve 1, solve 4) with
      | None, None -> ()
      | Some a, Some b ->
          check cb "identical solution" true
            (Solution.equal a.Dp_power.solution b.Dp_power.solution);
          check cb "identical power" true (a.Dp_power.power = b.Dp_power.power);
          check cb "identical cost" true (a.Dp_power.cost = b.Dp_power.cost)
      | _ -> Alcotest.fail "domains changed feasibility")
    seeds

(* On an instance with sibling subtrees the pruned run must report
   strictly fewer merge products and a positive dominance_pruned count.
   Heterogeneous leaf loads matter: placing one mode-1 server at the
   2-request leaf or at the 4-request leaf yields identical counts with
   different residual flows, exactly the cells dominance collapses —
   and with three siblings the smaller intermediate table feeds the
   next merge, so the product count strictly drops. *)
let test_counters_show_pruning () =
  let t =
    Tree.build
      (Tree.node
         [
           Tree.node ~clients:[ 2 ] [];
           Tree.node ~clients:[ 4 ] [];
           Tree.node ~clients:[ 3 ] [];
         ])
  in
  let run prune =
    let p0 = Stats_counters.value c_products in
    let d0 = Stats_counters.value c_dominance in
    ignore
      (Dp_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
         ~prune ());
    (Stats_counters.value c_products - p0, Stats_counters.value c_dominance - d0)
  in
  let products_unpruned, dominance_unpruned = run false in
  let products_pruned, dominance_pruned = run true in
  check ci "unpruned run prunes nothing" 0 dominance_unpruned;
  check cb "pruned run drops cells" true (dominance_pruned > 0);
  check cb "strictly fewer merge products" true
    (products_pruned < products_unpruned)

let () =
  Alcotest.run "dp_power_diff"
    [
      ( "differential",
        [
          Alcotest.test_case "2 modes, minpower" `Slow test_two_modes_vs_brute;
          Alcotest.test_case "3 modes, minpower" `Slow
            test_three_modes_vs_brute;
          Alcotest.test_case "bounded, monotone cost" `Slow
            test_bounded_monotone_vs_brute;
          Alcotest.test_case "bounded, paper cost" `Slow
            test_bounded_nonmonotone_default_is_safe;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "frontier pruned = unpruned" `Quick
            test_frontier_pruned_matches_unpruned;
          Alcotest.test_case "domains bit-identical" `Quick
            test_domains_bit_identical;
          Alcotest.test_case "counters show pruning" `Quick
            test_counters_show_pruning;
        ] );
    ]
