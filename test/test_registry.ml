(* Registry-driven differential tests. Instead of hand-listing solver
   pairs, these suites enumerate {!Replica_core.Registry} entries by
   capability and cross-check them, so a newly registered algorithm is
   pulled into the differential net automatically. Also pins the
   registry's structural invariants (unique resolvable names, memo
   coherence, defaults) and keeps the DESIGN.md capability matrix in
   sync with the code. *)

open Replica_tree
open Replica_core
open Helpers

(* Exact cost solvers under the closest policy share one optimum on
   no-pre instances (greedy is pre-oblivious, hence only compared
   there); other access policies optimize a different feasible set. *)
let exact_cost_solvers () =
  List.filter
    (fun (s : Solver.t) ->
      let c = s.Solver.capability in
      c.Solver.handles_cost
      && c.Solver.exactness = Solver.Exact
      && c.Solver.access = Solver.Closest)
    (Registry.all ())

(* Every power solver except the oracle itself. *)
let power_solvers () =
  List.filter
    (fun (s : Solver.t) ->
      s.Solver.capability.Solver.handles_power && s.Solver.name <> "brute")
    (Registry.all ())

let get_entry name =
  match Registry.find name with
  | Some s -> s
  | None -> Alcotest.failf "registry entry %S missing" name

(* --- structural invariants --- *)

let test_names_unique_and_resolvable () =
  let names = Registry.names () in
  check cb "population covers the library" true (List.length names >= 12);
  check ci "names are unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun n ->
      match Registry.find n with
      | Some s -> check Alcotest.string "find is name-stable" n s.Solver.name
      | None -> Alcotest.failf "registered name %S does not resolve" n)
    names;
  check cb "unknown names are rejected" true
    (Registry.find "no-such-solver" = None)

let test_memo_coherence () =
  List.iter
    (fun (s : Solver.t) ->
      let inc = s.Solver.capability.Solver.supports_incremental in
      check cb
        (s.Solver.name ^ ": make_memo iff incremental")
        inc
        (s.Solver.make_memo <> None);
      check cb
        (s.Solver.name ^ ": memo_size iff incremental")
        inc
        (s.Solver.memo_size <> None))
    (Registry.all ())

let test_defaults () =
  let name o = (Registry.default_for o).Solver.name in
  check Alcotest.string "min-servers default" "dp-withpre"
    (name Problem.Min_servers);
  check Alcotest.string "min-cost default" "dp-withpre"
    (name (Problem.Min_cost (Cost.basic ())));
  check Alcotest.string "min-power default" "dp-power"
    (name
       (Problem.Min_power
          {
            modes = modes_2;
            power = power_exp3;
            cost = cost_cheap;
            bound = infinity;
          }))

(* --- differential: exact cost solvers agree pairwise --- *)

let test_exact_cost_pairwise () =
  let solvers = exact_cost_solvers () in
  check cb "at least three exact cost solvers" true (List.length solvers >= 3);
  let w = 5 in
  let cost = Cost.basic ~create:0.4 ~delete:0.3 () in
  let rng = Rng.create 42 in
  for rep = 1 to 50 do
    (* No pre-existing servers: the one regime every exact closest-policy
       cost solver provably shares (greedy is pre-oblivious). *)
    let t = no_pre_instance rng in
    let problem = Problem.min_cost t ~w ~cost in
    let results =
      List.map
        (fun (s : Solver.t) ->
          match Solver.run s problem Solver.default_request with
          | Ok r ->
              ( s.Solver.name,
                Option.map
                  (fun (o : Solver.outcome) ->
                    Option.value o.Solver.cost ~default:nan)
                  r )
          | Error e ->
              Alcotest.failf "%s rejected a compatible problem: %s"
                s.Solver.name e)
        solvers
    in
    match results with
    | [] -> ()
    | (ref_name, ref_cost) :: rest ->
        List.iter
          (fun (name, c) ->
            match (ref_cost, c) with
            | None, None -> ()
            | Some a, Some b ->
                if abs_float (a -. b) > 1e-9 then
                  Alcotest.failf "rep %d: %s = %f disagrees with %s = %f" rep
                    name b ref_name a
            | _ ->
                Alcotest.failf "rep %d: feasibility disagreement %s vs %s" rep
                  name ref_name)
          rest
  done

(* --- differential: every power solver vs the exhaustive oracle --- *)

let test_power_solvers_vs_brute () =
  let brute = get_entry "brute" in
  let solvers = power_solvers () in
  check cb "at least four power solvers" true (List.length solvers >= 4);
  let rng = Rng.create 77 in
  for rep = 1 to 25 do
    let nodes = 2 + Rng.int rng 6 in
    let pre = Rng.int rng 3 in
    let t = small_tree_with_pre rng ~nodes ~max_requests:4 ~pre in
    let problem =
      Problem.min_power t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap ()
    in
    let optimum =
      match Solver.run brute problem Solver.default_request with
      | Ok (Some o) -> Option.value o.Solver.power ~default:nan
      | Ok None -> Alcotest.failf "rep %d: oracle infeasible at bound = inf" rep
      | Error e -> Alcotest.failf "oracle: %s" e
    in
    List.iter
      (fun (s : Solver.t) ->
        let request = Solver.request ~rng:(Rng.create (1000 + rep)) () in
        match Solver.run s problem request with
        | Error e -> Alcotest.failf "%s: %s" s.Solver.name e
        | Ok None ->
            Alcotest.failf "rep %d: %s infeasible at bound = inf" rep
              s.Solver.name
        | Ok (Some o) ->
            let p = Option.value o.Solver.power ~default:nan in
            (match s.Solver.capability.Solver.exactness with
            | Solver.Exact ->
                if abs_float (p -. optimum) > 1e-9 then
                  Alcotest.failf "rep %d: exact %s found %f, optimum is %f" rep
                    s.Solver.name p optimum
            | Solver.Heuristic ->
                if p < optimum -. 1e-9 then
                  Alcotest.failf "rep %d: %s beat the exhaustive optimum (%f < %f)"
                    rep s.Solver.name p optimum);
            (* The reported power must be the true Eq. 3 value of the
               returned placement — no solver may self-report. *)
            check cf
              (Printf.sprintf "rep %d: %s reports its placement's power" rep
                 s.Solver.name)
              (Solution.power t modes_2 power_exp3 o.Solver.solution)
              p)
      solvers
  done

(* --- capability guards actually fire through Solver.run --- *)

let test_capability_guards () =
  let t = figure1_tree ~root_requests:2 in
  let cost_problem = Problem.min_cost t ~w:10 ~cost:(Cost.basic ()) in
  let bounded_power =
    Problem.min_power t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
      ~bound:3. ()
  in
  (match Solver.run (get_entry "greedy") bounded_power Solver.default_request with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "greedy accepted a power problem");
  (match Solver.run (get_entry "dp-power") cost_problem Solver.default_request with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dp-power accepted a cost problem");
  (match
     Solver.run (get_entry "heuristic-cost")
       (Problem.make t ~w:10
          (Problem.Min_power
             {
               modes = modes_2;
               power = power_exp3;
               cost = cost_cheap;
               bound = 3.;
             }))
       Solver.default_request
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "heuristic-cost accepted a bounded power problem");
  let big =
    Tree.build
      (Tree.node
         (List.init 25 (fun _ -> Tree.node ~clients:[ 1 ] [])))
  in
  match
    Solver.run (get_entry "brute")
      (Problem.min_servers big ~w:5)
      Solver.default_request
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "brute accepted a tree above its size guard"

(* --- DESIGN.md capability matrix stays in sync with the code --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find_sub haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i =
    if i + m > n then None
    else if String.sub haystack i m = needle then Some i
    else go (i + 1)
  in
  go 0

let test_design_matrix_in_sync () =
  let design = read_file "../DESIGN.md" in
  let begin_marker = "<!-- solver-matrix:begin -->" in
  let end_marker = "<!-- solver-matrix:end -->" in
  match (find_sub design begin_marker, find_sub design end_marker) with
  | Some b, Some e when b < e ->
      let start = b + String.length begin_marker in
      let committed = String.trim (String.sub design start (e - start)) in
      let generated = String.trim (Registry.matrix_markdown ()) in
      check Alcotest.string
        "DESIGN.md solver matrix matches Registry.matrix_markdown ()"
        generated committed
  | _ ->
      Alcotest.fail
        "DESIGN.md is missing the solver-matrix:begin/end markers"

let () =
  Alcotest.run "registry"
    [
      ( "structure",
        [
          Alcotest.test_case "names unique and resolvable" `Quick
            test_names_unique_and_resolvable;
          Alcotest.test_case "memo coherence" `Quick test_memo_coherence;
          Alcotest.test_case "objective defaults" `Quick test_defaults;
          Alcotest.test_case "capability guards" `Quick test_capability_guards;
        ] );
      ( "differential",
        [
          Alcotest.test_case "exact cost solvers pairwise" `Slow
            test_exact_cost_pairwise;
          Alcotest.test_case "power solvers vs brute" `Slow
            test_power_solvers_vs_brute;
        ] );
      ( "docs",
        [
          Alcotest.test_case "DESIGN.md matrix in sync" `Quick
            test_design_matrix_in_sync;
        ] );
    ]
