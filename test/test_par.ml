open Helpers

(* Par must be a drop-in List.map at every domain count: the experiment
   harnesses and Dp_power's sibling fan-out rely on order preservation
   and on exceptions from the worker function reaching the caller. *)

let domain_counts = [ 1; 2; 8 ]

exception Boom

let test_matches_list_map () =
  List.iter
    (fun domains ->
      List.iter
        (fun n ->
          let input = List.init n Fun.id in
          let f x = (x * 37) mod 101 in
          check (Alcotest.list ci)
            (Printf.sprintf "domains=%d n=%d" domains n)
            (List.map f input)
            (Par.map ~domains f input))
        [ 0; 1; 2; 3; 7; 64; 1000 ])
    domain_counts

let test_order_preserved () =
  (* Slow down early items so that, with real parallelism, later items
     finish first — the output must still be positional. *)
  List.iter
    (fun domains ->
      let input = List.init 32 Fun.id in
      let f x =
        if x < 4 then ignore (Sys.opaque_identity (Array.init 20_000 Fun.id));
        Printf.sprintf "item-%d" x
      in
      check
        (Alcotest.list Alcotest.string)
        (Printf.sprintf "positional at domains=%d" domains)
        (List.map f input) (Par.map ~domains f input))
    domain_counts

let test_exception_propagates () =
  List.iter
    (fun domains ->
      Alcotest.check_raises
        (Printf.sprintf "raises at domains=%d" domains)
        Boom
        (fun () ->
          ignore
            (Par.map ~domains
               (fun x -> if x = 500 then raise Boom else x)
               (List.init 1000 Fun.id))))
    domain_counts

let test_map2 () =
  List.iter
    (fun domains ->
      let a = List.init 100 Fun.id in
      let b = List.init 100 (fun i -> i * i) in
      check (Alcotest.list ci)
        (Printf.sprintf "map2 at domains=%d" domains)
        (List.map2 ( + ) a b)
        (Par.map2 ~domains ( + ) a b))
    domain_counts;
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Par.map2: length mismatch") (fun () ->
      ignore (Par.map2 ( + ) [ 1 ] [ 1; 2 ]))

let test_default_domains () =
  let d = Par.default_domains () in
  check cb "within 1..8" true (d >= 1 && d <= 8)

(* Size-hinted scheduling reorders only the dispatch, never the output:
   for any weights (negative, zero, duplicated, huge) the result must
   stay bit-identical to List.map at every domain count. *)
let prop_weights_output_invariant =
  qcheck_case "weighted schedule is output-invariant"
    QCheck2.Gen.(
      pair (list_size (int_bound 60) (int_range (-5) 1_000)) (int_bound 7))
    (fun (weights, domains) ->
      let domains = 1 + domains in
      let input = List.mapi (fun i _ -> i) weights in
      let f x = (x * 37) mod 101 in
      Par.map ~domains ~weights f input = List.map f input)

let prop_weights_exceptions_propagate =
  qcheck_case "weighted schedule still propagates exceptions"
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 40) (int_bound 100))
        (int_bound 7) (int_bound 100))
    (fun (weights, domains, k) ->
      let domains = 1 + domains in
      let n = List.length weights in
      let bad = k mod n in
      let input = List.init n Fun.id in
      match
        Par.map ~domains ~weights
          (fun x -> if x = bad then raise Boom else x)
          input
      with
      | _ -> false
      | exception Boom -> true)

let test_weights_length_mismatch () =
  Alcotest.check_raises "weights length mismatch"
    (Invalid_argument "Par.map: weights length mismatch") (fun () ->
      ignore (Par.map ~domains:2 ~weights:[ 1; 2 ] Fun.id [ 1; 2; 3 ]))

let () =
  Alcotest.run "par"
    [
      ( "map",
        [
          Alcotest.test_case "matches List.map" `Quick test_matches_list_map;
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exception_propagates;
          Alcotest.test_case "map2" `Quick test_map2;
          Alcotest.test_case "default domains" `Quick test_default_domains;
        ] );
      ( "weights",
        [
          prop_weights_output_invariant;
          prop_weights_exceptions_propagate;
          Alcotest.test_case "length mismatch" `Quick
            test_weights_length_mismatch;
        ] );
    ]
