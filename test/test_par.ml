open Helpers

(* Par must be a drop-in List.map at every domain count: the experiment
   harnesses and Dp_power's sibling fan-out rely on order preservation
   and on exceptions from the worker function reaching the caller. *)

let domain_counts = [ 1; 2; 8 ]

exception Boom

let test_matches_list_map () =
  List.iter
    (fun domains ->
      List.iter
        (fun n ->
          let input = List.init n Fun.id in
          let f x = (x * 37) mod 101 in
          check (Alcotest.list ci)
            (Printf.sprintf "domains=%d n=%d" domains n)
            (List.map f input)
            (Par.map ~domains f input))
        [ 0; 1; 2; 3; 7; 64; 1000 ])
    domain_counts

let test_order_preserved () =
  (* Slow down early items so that, with real parallelism, later items
     finish first — the output must still be positional. *)
  List.iter
    (fun domains ->
      let input = List.init 32 Fun.id in
      let f x =
        if x < 4 then ignore (Sys.opaque_identity (Array.init 20_000 Fun.id));
        Printf.sprintf "item-%d" x
      in
      check
        (Alcotest.list Alcotest.string)
        (Printf.sprintf "positional at domains=%d" domains)
        (List.map f input) (Par.map ~domains f input))
    domain_counts

let test_exception_propagates () =
  List.iter
    (fun domains ->
      Alcotest.check_raises
        (Printf.sprintf "raises at domains=%d" domains)
        Boom
        (fun () ->
          ignore
            (Par.map ~domains
               (fun x -> if x = 500 then raise Boom else x)
               (List.init 1000 Fun.id))))
    domain_counts

let test_map2 () =
  List.iter
    (fun domains ->
      let a = List.init 100 Fun.id in
      let b = List.init 100 (fun i -> i * i) in
      check (Alcotest.list ci)
        (Printf.sprintf "map2 at domains=%d" domains)
        (List.map2 ( + ) a b)
        (Par.map2 ~domains ( + ) a b))
    domain_counts;
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Par.map2: length mismatch") (fun () ->
      ignore (Par.map2 ( + ) [ 1 ] [ 1; 2 ]))

let test_default_domains () =
  let d = Par.default_domains () in
  check cb "within 1..8" true (d >= 1 && d <= 8)

let () =
  Alcotest.run "par"
    [
      ( "map",
        [
          Alcotest.test_case "matches List.map" `Quick test_matches_list_map;
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exception_propagates;
          Alcotest.test_case "map2" `Quick test_map2;
          Alcotest.test_case "default domains" `Quick test_default_domains;
        ] );
    ]
